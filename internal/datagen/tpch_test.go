package datagen

import (
	"math"
	"reflect"
	"testing"

	"sizelos/internal/datagraph"
	"sizelos/internal/rank"
	"sizelos/internal/relational"
)

func smallTPCH() TPCHConfig {
	return TPCHConfig{Seed: 7, ScaleFactor: 0.0005}
}

func TestGenerateTPCHIntegrity(t *testing.T) {
	db, err := GenerateTPCH(smallTPCH())
	if err != nil {
		t.Fatalf("GenerateTPCH: %v", err)
	}
	if errs := db.Validate(); len(errs) != 0 {
		t.Fatalf("referential integrity: %v", errs)
	}
	if got := db.Relation("Region").Len(); got != 5 {
		t.Errorf("Region = %d, want 5", got)
	}
	if got := db.Relation("Nation").Len(); got != 25 {
		t.Errorf("Nation = %d, want 25", got)
	}
	ps := db.Relation("Partsupp").Len()
	parts := db.Relation("Parts").Len()
	if ps != 4*parts {
		t.Errorf("Partsupp = %d, want 4×Parts = %d", ps, 4*parts)
	}
	if db.Relation("Lineitem").Len() < db.Relation("Orders").Len() {
		t.Error("expected at least one lineitem per order")
	}
}

func TestGenerateTPCHDeterministic(t *testing.T) {
	a, _ := GenerateTPCH(smallTPCH())
	b, _ := GenerateTPCH(smallTPCH())
	for _, rel := range a.Relations {
		if !reflect.DeepEqual(rel.Tuples, b.Relation(rel.Name).Tuples) {
			t.Errorf("relation %s differs between identical seeds", rel.Name)
		}
	}
}

func TestOrdersTotalPriceConsistent(t *testing.T) {
	db, err := GenerateTPCH(smallTPCH())
	if err != nil {
		t.Fatalf("GenerateTPCH: %v", err)
	}
	orders := db.Relation("Orders")
	li := db.Relation("Lineitem")
	liOrder := li.FKIndexOf("order")
	epCol := li.ColIndex("extendedprice")
	tpCol := orders.ColIndex("totalprice")
	for oid := 0; oid < orders.Len() && oid < 50; oid++ {
		pk := orders.PK(relational.TupleID(oid))
		sum := 0.0
		for _, lid := range db.JoinChildren(li, liOrder, pk) {
			sum += li.Tuples[lid][epCol].Float
		}
		got := orders.Tuples[oid][tpCol].Float
		if math.Abs(got-sum) > 1e-6 {
			t.Fatalf("order %d: totalprice %v != Σ lineitems %v", pk, got, sum)
		}
	}
}

func TestGenerateTPCHBadScale(t *testing.T) {
	if _, err := GenerateTPCH(TPCHConfig{Seed: 1, ScaleFactor: 0}); err == nil {
		t.Error("zero scale factor accepted")
	}
	if _, err := GenerateTPCH(TPCHConfig{Seed: 1, ScaleFactor: -1}); err == nil {
		t.Error("negative scale factor accepted")
	}
}

func TestTPCHGAsCompute(t *testing.T) {
	db, err := GenerateTPCH(smallTPCH())
	if err != nil {
		t.Fatalf("GenerateTPCH: %v", err)
	}
	g, err := datagraph.Build(db)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	for _, ga := range []*rank.GA{TPCHGA1(), TPCHGA2()} {
		scores, stats, err := rank.Compute(g, ga, rank.DefaultOptions())
		if err != nil {
			t.Fatalf("Compute(%s): %v", ga.Name, err)
		}
		if !stats.Converged {
			t.Errorf("%s did not converge", ga.Name)
		}
		if len(scores["Customer"]) != db.Relation("Customer").Len() {
			t.Errorf("%s: missing Customer scores", ga.Name)
		}
	}
}

func TestValueRankDiscriminatesCustomers(t *testing.T) {
	// A customer with high-value orders should outrank one with low-value
	// orders under GA1 (ValueRank); under GA2 (values stripped) the two are
	// ranked by structure alone. We check the value-sensitivity property on
	// aggregate: the top customer by summed order value should be in the
	// top decile of ValueRank scores.
	db, err := GenerateTPCH(smallTPCH())
	if err != nil {
		t.Fatalf("GenerateTPCH: %v", err)
	}
	g, err := datagraph.Build(db)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	scores, _, err := rank.Compute(g, TPCHGA1(), rank.DefaultOptions())
	if err != nil {
		t.Fatalf("Compute: %v", err)
	}
	orders := db.Relation("Orders")
	custCol := orders.ColIndex("customer")
	tpCol := orders.ColIndex("totalprice")
	valueByCust := map[int64]float64{}
	for _, tup := range orders.Tuples {
		valueByCust[tup[custCol].Int] += tup[tpCol].Float
	}
	var topCust int64
	best := -1.0
	for c, v := range valueByCust {
		if v > best {
			best, topCust = v, c
		}
	}
	cust := db.Relation("Customer")
	cs := scores["Customer"]
	topID, _ := cust.LookupPK(topCust)
	higher := 0
	for _, v := range cs {
		if v > cs[topID] {
			higher++
		}
	}
	if frac := float64(higher) / float64(len(cs)); frac > 0.10 {
		t.Errorf("top-value customer ranked in worst %0.f%% of ValueRank", frac*100)
	}
}

func TestTPCHGDSsValidate(t *testing.T) {
	db, err := GenerateTPCH(smallTPCH())
	if err != nil {
		t.Fatalf("GenerateTPCH: %v", err)
	}
	if err := CustomerGDS().Validate(db); err != nil {
		t.Errorf("CustomerGDS invalid: %v", err)
	}
	if err := SupplierGDS().Validate(db); err != nil {
		t.Errorf("SupplierGDS invalid: %v", err)
	}
}

func TestCustomerGDSThetaMatchesPaper(t *testing.T) {
	// §2.1: Customer GDS(0.7) includes only Customer, Nation, Region,
	// Order, Lineitem and Partsupp.
	pruned := CustomerGDS().Threshold(0.7)
	var labels []string
	for _, n := range pruned.Nodes() {
		labels = append(labels, n.Label)
	}
	want := []string{"Customer", "Nation", "Region", "Order", "Lineitem", "Partsupp"}
	if !reflect.DeepEqual(labels, want) {
		t.Errorf("GDS(0.7) = %v, want %v", labels, want)
	}
}
