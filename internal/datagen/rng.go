package datagen

import (
	"math"
	"math/rand"
)

// zipfWeights holds cumulative sampling weights w_i ∝ 1/(i+1)^s for n
// items, used for skewed assignment (author productivity).
type zipfWeights struct {
	cum []float64
}

func newZipfWeights(n int, s float64) zipfWeights {
	cum := make([]float64, n)
	total := 0.0
	for i := 0; i < n; i++ {
		total += 1 / math.Pow(float64(i+1), s)
		cum[i] = total
	}
	return zipfWeights{cum: cum}
}

// sample draws one index with probability proportional to its weight.
func (z zipfWeights) sample(r *rand.Rand) int {
	if len(z.cum) == 0 {
		return -1
	}
	x := r.Float64() * z.cum[len(z.cum)-1]
	lo, hi := 0, len(z.cum)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cum[mid] < x {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}
