// Package datagen builds the two evaluation databases of the paper —
// DBLP-like and TPC-H-like — as deterministic, seeded synthetic datasets,
// together with their Authority Transfer Schema Graphs (G_A, Figure 13) and
// expert Data Subject Schema Graphs (G_DS, Figures 2 and 12).
//
// Substitution note (see DESIGN.md §3): the paper used a 2011 DBLP snapshot
// (2.96M tuples) and TPC-H sf=1 (8.66M tuples). Neither is available
// offline, so the generators reproduce the structural properties the
// algorithms are sensitive to — Zipf author productivity, preferential-
// attachment citations, dbgen table ratios, discriminative value columns —
// at configurable laptop scale.
package datagen

import (
	"math"
	"math/rand"
)

// zipfWeights holds cumulative sampling weights w_i ∝ 1/(i+1)^s for n
// items, used for skewed assignment (author productivity).
type zipfWeights struct {
	cum []float64
}

func newZipfWeights(n int, s float64) zipfWeights {
	cum := make([]float64, n)
	total := 0.0
	for i := 0; i < n; i++ {
		total += 1 / math.Pow(float64(i+1), s)
		cum[i] = total
	}
	return zipfWeights{cum: cum}
}

// sample draws one index with probability proportional to its weight.
func (z zipfWeights) sample(r *rand.Rand) int {
	if len(z.cum) == 0 {
		return -1
	}
	x := r.Float64() * z.cum[len(z.cum)-1]
	lo, hi := 0, len(z.cum)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cum[mid] < x {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}
