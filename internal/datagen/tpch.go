package datagen

import (
	"fmt"
	"math/rand"

	"sizelos/internal/rank"
	"sizelos/internal/relational"
	"sizelos/internal/schemagraph"
)

// TPCHConfig sizes the synthetic trading database. ScaleFactor follows the
// dbgen convention: sf=1 would be 150k customers / 1.5M orders / ~6M
// lineitems; the defaults use a laptop-scale fraction with the same ratios
// (paper Figure 11 schema).
type TPCHConfig struct {
	Seed        int64
	ScaleFactor float64
}

// DefaultTPCHConfig is used by tests, examples and the benchmark harness.
func DefaultTPCHConfig() TPCHConfig {
	return TPCHConfig{Seed: 7, ScaleFactor: 0.004}
}

var regionNames = []string{"AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"}

var nationNames = []string{
	"ALGERIA", "ARGENTINA", "BRAZIL", "CANADA", "EGYPT", "ETHIOPIA",
	"FRANCE", "GERMANY", "INDIA", "INDONESIA", "IRAN", "IRAQ", "JAPAN",
	"JORDAN", "KENYA", "MOROCCO", "MOZAMBIQUE", "PERU", "CHINA", "ROMANIA",
	"SAUDI ARABIA", "VIETNAM", "RUSSIA", "UNITED KINGDOM", "UNITED STATES",
}

var partAdjectives = []string{
	"antique", "burnished", "chocolate", "dim", "economy", "forest",
	"gainsboro", "honeydew", "ivory", "khaki", "lavender", "metallic",
	"navajo", "olive", "peru", "rosy", "saddle", "thistle", "violet", "wheat",
}

var partNouns = []string{
	"brass widget", "copper gear", "steel bolt", "tin plate", "nickel rod",
	"chrome spring", "zinc bracket", "pewter hinge", "bronze valve", "iron shaft",
}

// tpchCounts derives table cardinalities from the scale factor with dbgen's
// ratios, clamped to small minimums so tiny factors still produce a
// connected database.
type tpchCounts struct {
	regions, nations, suppliers, parts, partsupps, customers, orders int
	lineitemsPerOrderMax                                             int
}

func countsFor(sf float64) tpchCounts {
	c := tpchCounts{
		regions:              5,
		nations:              25,
		suppliers:            maxInt(10, int(10000*sf)),
		parts:                maxInt(40, int(200000*sf)),
		customers:            maxInt(30, int(150000*sf)),
		orders:               maxInt(300, int(1500000*sf)),
		lineitemsPerOrderMax: 7,
	}
	c.partsupps = 4 * c.parts // dbgen: 4 suppliers per part
	return c
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// GenerateTPCH builds the TPC-H-like database of Figure 11: Region, Nation,
// Customer, Supplier, Parts, Partsupp, Orders, Lineitem. Value columns
// (TotalPrice, ExtendedPrice, SupplyCost, RetailPrice, AcctBal) are drawn
// from wide ranges so that ValueRank is discriminative; Orders.TotalPrice is
// the exact sum of the order's Lineitem extended prices, as in TPC-H.
func GenerateTPCH(cfg TPCHConfig) (*relational.DB, error) {
	if cfg.ScaleFactor <= 0 {
		return nil, fmt.Errorf("datagen: scale factor must be positive, got %v", cfg.ScaleFactor)
	}
	r := rand.New(rand.NewSource(cfg.Seed))
	n := countsFor(cfg.ScaleFactor)
	db := relational.NewDB("tpch")

	region := relational.MustNewRelation("Region",
		[]relational.Column{
			{Name: "id", Kind: relational.KindInt, Affinity: 1},
			{Name: "name", Kind: relational.KindString, Affinity: 1},
		}, "id", nil)
	nation := relational.MustNewRelation("Nation",
		[]relational.Column{
			{Name: "id", Kind: relational.KindInt, Affinity: 1},
			{Name: "region", Kind: relational.KindInt, Affinity: 1},
			{Name: "name", Kind: relational.KindString, Affinity: 1},
		}, "id", []relational.ForeignKey{{Column: "region", Ref: "Region"}})
	customer := relational.MustNewRelation("Customer",
		[]relational.Column{
			{Name: "id", Kind: relational.KindInt, Affinity: 1},
			{Name: "nation", Kind: relational.KindInt, Affinity: 1},
			{Name: "name", Kind: relational.KindString, Affinity: 1},
			{Name: "acctbal", Kind: relational.KindFloat, Affinity: 1},
		}, "id", []relational.ForeignKey{{Column: "nation", Ref: "Nation"}})
	supplier := relational.MustNewRelation("Supplier",
		[]relational.Column{
			{Name: "id", Kind: relational.KindInt, Affinity: 1},
			{Name: "nation", Kind: relational.KindInt, Affinity: 1},
			{Name: "name", Kind: relational.KindString, Affinity: 1},
			{Name: "acctbal", Kind: relational.KindFloat, Affinity: 1},
		}, "id", []relational.ForeignKey{{Column: "nation", Ref: "Nation"}})
	parts := relational.MustNewRelation("Parts",
		[]relational.Column{
			{Name: "id", Kind: relational.KindInt, Affinity: 1},
			{Name: "name", Kind: relational.KindString, Affinity: 1},
			{Name: "retailprice", Kind: relational.KindFloat, Affinity: 1},
		}, "id", nil)
	partsupp := relational.MustNewRelation("Partsupp",
		[]relational.Column{
			{Name: "id", Kind: relational.KindInt, Affinity: 1},
			{Name: "part", Kind: relational.KindInt, Affinity: 1},
			{Name: "supplier", Kind: relational.KindInt, Affinity: 1},
			{Name: "supplycost", Kind: relational.KindFloat, Affinity: 1},
			{Name: "availqty", Kind: relational.KindInt, Affinity: 1},
			// Comment is excluded from Customer OSs via attribute affinity
			// (§2.1: "Comment is excluded from Partsupp relation as it is
			// not relevant to Customer DSs").
			{Name: "comment", Kind: relational.KindString, Affinity: 0.3},
		}, "id", []relational.ForeignKey{
			{Column: "part", Ref: "Parts"},
			{Column: "supplier", Ref: "Supplier"},
		})
	orders := relational.MustNewRelation("Orders",
		[]relational.Column{
			{Name: "id", Kind: relational.KindInt, Affinity: 1},
			{Name: "customer", Kind: relational.KindInt, Affinity: 1},
			{Name: "totalprice", Kind: relational.KindFloat, Affinity: 1},
			{Name: "orderdate", Kind: relational.KindString, Affinity: 1},
		}, "id", []relational.ForeignKey{{Column: "customer", Ref: "Customer"}})
	lineitem := relational.MustNewRelation("Lineitem",
		[]relational.Column{
			{Name: "id", Kind: relational.KindInt, Affinity: 1},
			{Name: "order", Kind: relational.KindInt, Affinity: 1},
			{Name: "partsupp", Kind: relational.KindInt, Affinity: 1},
			{Name: "extendedprice", Kind: relational.KindFloat, Affinity: 1},
			{Name: "quantity", Kind: relational.KindInt, Affinity: 1},
		}, "id", []relational.ForeignKey{
			{Column: "order", Ref: "Orders"},
			{Column: "partsupp", Ref: "Partsupp"},
		})
	for _, rel := range []*relational.Relation{region, nation, customer, supplier, parts, partsupp, orders, lineitem} {
		db.MustAddRelation(rel)
	}

	for i, name := range regionNames {
		region.MustInsert(relational.Tuple{relational.IntVal(int64(i + 1)), relational.StrVal(name)})
	}
	for i := 0; i < n.nations; i++ {
		nation.MustInsert(relational.Tuple{
			relational.IntVal(int64(i + 1)),
			relational.IntVal(int64(i%n.regions + 1)),
			relational.StrVal(nationNames[i%len(nationNames)]),
		})
	}
	for i := 0; i < n.customers; i++ {
		customer.MustInsert(relational.Tuple{
			relational.IntVal(int64(i + 1)),
			relational.IntVal(int64(r.Intn(n.nations) + 1)),
			relational.StrVal(fmt.Sprintf("Customer#%06d", i+1)),
			relational.FloatVal(float64(r.Intn(999999)) / 100),
		})
	}
	for i := 0; i < n.suppliers; i++ {
		supplier.MustInsert(relational.Tuple{
			relational.IntVal(int64(i + 1)),
			relational.IntVal(int64(r.Intn(n.nations) + 1)),
			relational.StrVal(fmt.Sprintf("Supplier#%06d", i+1)),
			relational.FloatVal(float64(r.Intn(999999)) / 100),
		})
	}
	for i := 0; i < n.parts; i++ {
		parts.MustInsert(relational.Tuple{
			relational.IntVal(int64(i + 1)),
			relational.StrVal(fmt.Sprintf("%s %s",
				partAdjectives[r.Intn(len(partAdjectives))],
				partNouns[r.Intn(len(partNouns))])),
			relational.FloatVal(900 + float64(r.Intn(110000))/100),
		})
	}
	psID := int64(0)
	for p := 0; p < n.parts; p++ {
		for s := 0; s < 4; s++ {
			psID++
			partsupp.MustInsert(relational.Tuple{
				relational.IntVal(psID),
				relational.IntVal(int64(p + 1)),
				relational.IntVal(int64(r.Intn(n.suppliers) + 1)),
				relational.FloatVal(1 + float64(r.Intn(99900))/100),
				relational.IntVal(int64(1 + r.Intn(9999))),
				relational.StrVal("generated filler comment"),
			})
		}
	}
	// Orders with skewed per-customer counts (some customers order a lot),
	// each with 1..7 lineitems; TotalPrice = Σ ExtendedPrice.
	custZipf := newZipfWeights(n.customers, 0.4)
	liID := int64(0)
	for o := 0; o < n.orders; o++ {
		cust := custZipf.sample(r) + 1
		nLines := 1 + r.Intn(n.lineitemsPerOrderMax)
		total := 0.0
		lines := make([]relational.Tuple, 0, nLines)
		for li := 0; li < nLines; li++ {
			liID++
			qty := 1 + r.Intn(50)
			ps := int64(r.Intn(int(psID)) + 1)
			price := float64(qty) * (10 + float64(r.Intn(19000))/100)
			total += price
			lines = append(lines, relational.Tuple{
				relational.IntVal(liID),
				relational.IntVal(int64(o + 1)),
				relational.IntVal(ps),
				relational.FloatVal(price),
				relational.IntVal(int64(qty)),
			})
		}
		orders.MustInsert(relational.Tuple{
			relational.IntVal(int64(o + 1)),
			relational.IntVal(int64(cust)),
			relational.FloatVal(total),
			relational.StrVal(fmt.Sprintf("19%02d-%02d-%02d", 92+r.Intn(7), 1+r.Intn(12), 1+r.Intn(28))),
		})
		for _, t := range lines {
			lineitem.MustInsert(t)
		}
	}
	return db, nil
}

// TPCHGA1 is the default TPC-H ValueRank G_A (paper Figure 13b): order and
// lineitem flows are weighted by monetary value (0.5·f(TotalPrice),
// 0.1·f(ExtendedPrice), 0.2/0.5·f(SupplyCost)), the geography edges carry
// small constant rates.
func TPCHGA1() *rank.GA {
	return rank.NewGA("GA1").
		// Geography.
		Direct("Nation", 0, true, 0.1).    // nation -> region
		Direct("Nation", 0, false, 0.1).   // region -> nations
		Direct("Customer", 0, true, 0.1).  // customer -> nation
		Direct("Customer", 0, false, 0.1). // nation -> customers
		Direct("Supplier", 0, true, 0.1).  // supplier -> nation
		Direct("Supplier", 0, false, 0.1). // nation -> suppliers
		// Trade: value-weighted authority.
		DirectValue("Orders", 0, false, 0.5, "totalprice").      // customer -> orders ∝ value
		Direct("Orders", 0, true, 0.2).                          // order -> customer
		DirectValue("Lineitem", 0, false, 0.1, "extendedprice"). // order -> lineitems ∝ value
		Direct("Lineitem", 0, true, 0.3).                        // lineitem -> order
		Direct("Lineitem", 1, true, 0.2).                        // lineitem -> partsupp
		DirectValue("Lineitem", 1, false, 0.1, "extendedprice"). // partsupp -> lineitems ∝ value
		Direct("Partsupp", 0, true, 0.1).                        // partsupp -> part
		DirectValue("Partsupp", 0, false, 0.5, "supplycost").    // part -> partsupps ∝ cost
		Direct("Partsupp", 1, true, 0.1).                        // partsupp -> supplier
		DirectValue("Partsupp", 1, false, 0.2, "supplycost")     // supplier -> partsupps ∝ cost
}

// TPCHGA2 is the paper's GA2 for TPC-H: GA1 with values neglected, i.e. a
// plain ObjectRank G_A.
func TPCHGA2() *rank.GA {
	return TPCHGA1().StripValues("GA2")
}

// CustomerGDS is the expert Customer G_DS of Figure 12 with the paper's
// affinities. At θ=0.7 it reduces to Customer, Nation, Region, Order,
// Lineitem and Partsupp, exactly as §2.1 states.
func CustomerGDS() *schemagraph.GDS {
	g := schemagraph.New("Customer")
	nation := g.Root.AddParentFK("Nation", "Nation", 0, 0.97)
	nation.AddParentFK("Region", "Region", 0, 0.91)
	supp := nation.AddChildFK("Supplier", "Supplier", 0, 0.52)
	ps2 := supp.AddChildFK("PartsuppOfSupplier", "Partsupp", 1, 0.43)
	ps2.AddChildFK("LineitemOfPartsupp", "Lineitem", 1, 0.34)
	ps2.AddParentFK("PartsOfPartsupp", "Parts", 0, 0.36)
	order := g.Root.AddChildFK("Order", "Orders", 0, 0.95)
	li := order.AddChildFK("Lineitem", "Lineitem", 0, 0.87)
	ps := li.AddParentFK("Partsupp", "Partsupp", 1, 0.77)
	ps.AddParentFK("Parts", "Parts", 0, 0.65)
	ps.AddParentFK("Supplier2", "Supplier", 1, 0.65)
	return g
}

// SupplierGDS is the expert Supplier G_DS (not drawn in the paper; built
// analogously to Figure 12 — Supplier OSs are the largest tested, averaging
// 1341 tuples in §6.2).
func SupplierGDS() *schemagraph.GDS {
	g := schemagraph.New("Supplier")
	nation := g.Root.AddParentFK("Nation", "Nation", 0, 0.97)
	nation.AddParentFK("Region", "Region", 0, 0.91)
	ps := g.Root.AddChildFK("Partsupp", "Partsupp", 1, 0.95)
	ps.AddParentFK("Parts", "Parts", 0, 0.78)
	li := ps.AddChildFK("Lineitem", "Lineitem", 1, 0.87)
	order := li.AddParentFK("Order", "Orders", 0, 0.80)
	order.AddParentFK("Customer", "Customer", 0, 0.72)
	return g
}
