package datagen

import (
	"fmt"
	"math/rand"
	"strings"

	"sizelos/internal/rank"
	"sizelos/internal/relational"
	"sizelos/internal/schemagraph"
)

// DBLPConfig sizes the synthetic bibliographic database. The defaults give
// a laptop-scale database whose prolific authors have complete OSs in the
// paper's reported range (hundreds to >1300 tuples, Fig. 10e).
type DBLPConfig struct {
	Seed        int64
	Authors     int
	Papers      int
	Conferences int
	StartYear   int
	YearSpan    int
	// AuthorZipf is the skew exponent of author productivity (0 = uniform).
	AuthorZipf float64
	// MeanCitations is the mean outgoing citations per paper; targets are
	// drawn with preferential attachment so in-citations are heavy-tailed.
	MeanCitations int
	// MaxAuthorsPerPaper caps the author list length (min 1).
	MaxAuthorsPerPaper int
}

// DefaultDBLPConfig is the configuration used by tests, examples and the
// benchmark harness.
func DefaultDBLPConfig() DBLPConfig {
	return DBLPConfig{
		Seed:               1,
		Authors:            1200,
		Papers:             4000,
		Conferences:        20,
		StartYear:          1988,
		YearSpan:           15,
		AuthorZipf:         0.62,
		MeanCitations:      4,
		MaxAuthorsPerPaper: 4,
	}
}

// famousAuthors are fixed, high-productivity authors inserted first so that
// the paper's running example (Q1: "Faloutsos") works verbatim against the
// synthetic database.
var famousAuthors = []string{
	"Christos Faloutsos",
	"Michalis Faloutsos",
	"Petros Faloutsos",
	"Rakesh Agrawal",
	"Nikos Mamoulis",
	"Dimitris Papadias",
}

var confNames = []string{
	"SIGMOD", "VLDB", "ICDE", "PODS", "KDD", "SIGCOMM", "SIGGRAPH", "WWW",
	"EDBT", "CIKM", "SIGIR", "ICDT", "PVLDB", "TKDE", "SODA", "STOC",
	"FOCS", "NIPS", "ICML", "SOSP", "OSDI", "NSDI", "PDIS", "SPIE",
}

var givenNames = []string{
	"Alex", "Bing", "Carlos", "Dana", "Elena", "Feng", "Georgia", "Hiro",
	"Irene", "Jorge", "Katerina", "Liang", "Maria", "Nikos", "Olga",
	"Pavel", "Qing", "Rosa", "Stefan", "Tomas", "Uma", "Viktor", "Wei",
	"Xenia", "Yannis", "Zoe",
}

var surnames = []string{
	"Anagnostou", "Brown", "Chen", "Dimitriou", "Eriksson", "Fernandez",
	"Gupta", "Hansen", "Ivanov", "Jensen", "Kumar", "Laskaris", "Muller",
	"Nakamura", "Oliveira", "Papadakis", "Quinn", "Rodriguez", "Schmidt",
	"Takahashi", "Ueda", "Vasquez", "Wang", "Xanthos", "Yamada", "Zhang",
}

var titleWords = []string{
	"Efficient", "Scalable", "Adaptive", "Distributed", "Parallel",
	"Indexing", "Querying", "Mining", "Clustering", "Ranking", "Searching",
	"Summarization", "Estimation", "Sampling", "Caching", "Joins",
	"Keyword", "Spatial", "Temporal", "Streaming", "Relational", "Graph",
	"Multimedia", "Similarity", "Declustering", "Fractals", "Power-law",
	"Topology", "Multicast", "Animation", "Databases", "Networks",
	"Systems", "Structures", "Algorithms", "Models",
}

// GenerateDBLP builds the DBLP-like database with the schema of the paper's
// Figure 1: Conference, Year (one tuple per conference-year), Paper, Author,
// and the junctions Writes (Paper-Author) and Cites (Paper-Paper).
func GenerateDBLP(cfg DBLPConfig) (*relational.DB, error) {
	if cfg.Authors < len(famousAuthors) {
		return nil, fmt.Errorf("datagen: need at least %d authors, got %d", len(famousAuthors), cfg.Authors)
	}
	if cfg.Papers < 1 || cfg.Conferences < 1 || cfg.YearSpan < 1 {
		return nil, fmt.Errorf("datagen: papers, conferences and year span must be positive")
	}
	if cfg.MaxAuthorsPerPaper < 1 {
		cfg.MaxAuthorsPerPaper = 1
	}
	r := rand.New(rand.NewSource(cfg.Seed))
	db := relational.NewDB("dblp")

	conf := relational.MustNewRelation("Conference",
		[]relational.Column{
			{Name: "id", Kind: relational.KindInt, Affinity: 1},
			{Name: "name", Kind: relational.KindString, Affinity: 1},
		}, "id", nil)
	year := relational.MustNewRelation("Year",
		[]relational.Column{
			{Name: "id", Kind: relational.KindInt, Affinity: 1},
			{Name: "conf", Kind: relational.KindInt, Affinity: 1},
			{Name: "year", Kind: relational.KindInt, Affinity: 1},
		}, "id", []relational.ForeignKey{{Column: "conf", Ref: "Conference"}})
	paper := relational.MustNewRelation("Paper",
		[]relational.Column{
			{Name: "id", Kind: relational.KindInt, Affinity: 1},
			{Name: "year", Kind: relational.KindInt, Affinity: 1},
			{Name: "title", Kind: relational.KindString, Affinity: 1},
		}, "id", []relational.ForeignKey{{Column: "year", Ref: "Year"}})
	author := relational.MustNewRelation("Author",
		[]relational.Column{
			{Name: "id", Kind: relational.KindInt, Affinity: 1},
			{Name: "name", Kind: relational.KindString, Affinity: 1},
		}, "id", nil)
	writes := relational.MustNewRelation("Writes",
		[]relational.Column{
			{Name: "id", Kind: relational.KindInt, Affinity: 1},
			{Name: "paper", Kind: relational.KindInt, Affinity: 1},
			{Name: "author", Kind: relational.KindInt, Affinity: 1},
		}, "id", []relational.ForeignKey{
			{Column: "paper", Ref: "Paper"},
			{Column: "author", Ref: "Author"},
		})
	cites := relational.MustNewRelation("Cites",
		[]relational.Column{
			{Name: "id", Kind: relational.KindInt, Affinity: 1},
			{Name: "citing", Kind: relational.KindInt, Affinity: 1},
			{Name: "cited", Kind: relational.KindInt, Affinity: 1},
		}, "id", []relational.ForeignKey{
			{Column: "citing", Ref: "Paper"},
			{Column: "cited", Ref: "Paper"},
		})
	for _, rel := range []*relational.Relation{conf, year, paper, author, writes, cites} {
		db.MustAddRelation(rel)
	}

	// Conferences and conference-year instances.
	for i := 0; i < cfg.Conferences; i++ {
		name := confNames[i%len(confNames)]
		if i >= len(confNames) {
			name = fmt.Sprintf("%s-%d", name, i/len(confNames)+2)
		}
		conf.MustInsert(relational.Tuple{
			relational.IntVal(int64(i + 1)), relational.StrVal(name),
		})
	}
	yearID := int64(0)
	for c := 0; c < cfg.Conferences; c++ {
		for y := 0; y < cfg.YearSpan; y++ {
			yearID++
			year.MustInsert(relational.Tuple{
				relational.IntVal(yearID),
				relational.IntVal(int64(c + 1)),
				relational.IntVal(int64(cfg.StartYear + y)),
			})
		}
	}

	// Authors: the fixed famous ones first (most productive), then random
	// names.
	for i := 0; i < cfg.Authors; i++ {
		var name string
		if i < len(famousAuthors) {
			name = famousAuthors[i]
		} else {
			name = fmt.Sprintf("%s %s",
				givenNames[r.Intn(len(givenNames))],
				surnames[r.Intn(len(surnames))])
			// Keep names unique so every author is addressable by keyword.
			name = fmt.Sprintf("%s %04d", name, i)
		}
		author.MustInsert(relational.Tuple{
			relational.IntVal(int64(i + 1)), relational.StrVal(name),
		})
	}

	// Papers with Zipf-skewed author assignment.
	zipf := newZipfWeights(cfg.Authors, cfg.AuthorZipf)
	writesID := int64(0)
	for p := 0; p < cfg.Papers; p++ {
		title := paperTitle(r)
		yid := int64(r.Intn(cfg.Conferences*cfg.YearSpan) + 1)
		paper.MustInsert(relational.Tuple{
			relational.IntVal(int64(p + 1)), relational.IntVal(yid), relational.StrVal(title),
		})
		nAuthors := 1 + r.Intn(cfg.MaxAuthorsPerPaper)
		seen := make(map[int]bool, nAuthors)
		for len(seen) < nAuthors {
			a := zipf.sample(r)
			if seen[a] {
				// Degenerate tiny configs could loop; widen by one step.
				a = (a + 1) % cfg.Authors
				if seen[a] {
					break
				}
			}
			seen[a] = true
			writesID++
			writes.MustInsert(relational.Tuple{
				relational.IntVal(writesID),
				relational.IntVal(int64(p + 1)),
				relational.IntVal(int64(a + 1)),
			})
		}
	}

	// Citations with preferential attachment: paper p cites earlier papers,
	// preferring already-cited ones. citedCount[i] tracks in-degree.
	citedCount := make([]int, cfg.Papers)
	citesID := int64(0)
	for p := 1; p < cfg.Papers; p++ {
		n := r.Intn(2*cfg.MeanCitations + 1) // uniform 0..2·mean, mean = MeanCitations
		if n > p {
			n = p
		}
		chosen := make(map[int]bool, n)
		for k := 0; k < n; k++ {
			target := prefAttachTarget(r, citedCount, p)
			if target < 0 || chosen[target] {
				continue
			}
			chosen[target] = true
			citedCount[target]++
			citesID++
			cites.MustInsert(relational.Tuple{
				relational.IntVal(citesID),
				relational.IntVal(int64(p + 1)),
				relational.IntVal(int64(target + 1)),
			})
		}
	}
	return db, nil
}

// prefAttachTarget picks a citation target among papers [0, limit) with
// probability proportional to citedCount+1 (preferential attachment). Two
// rejection rounds keep it O(1) amortized; -1 signals "skip".
func prefAttachTarget(r *rand.Rand, citedCount []int, limit int) int {
	for attempt := 0; attempt < 4; attempt++ {
		i := r.Intn(limit)
		// Accept with probability (count+1)/(maxPlausible); a simple
		// Bernoulli thinning against a slowly-growing bound keeps the
		// distribution heavy-tailed without bookkeeping.
		bound := 1 + citedCount[i]
		if r.Intn(4) < bound {
			return i
		}
	}
	return r.Intn(limit)
}

func paperTitle(r *rand.Rand) string {
	n := 3 + r.Intn(4)
	words := make([]string, n)
	for i := range words {
		words[i] = titleWords[r.Intn(len(titleWords))]
	}
	return strings.Join(words, " ")
}

// DBLPGA1 is the default DBLP Authority Transfer Schema Graph (paper Figure
// 13a): citations transfer 0.7 forward and 0 backward; papers confer
// authority on authors (0.3) and mildly vice versa (0.1); Paper/Year and
// Year/Conference exchange 0.2/0.2 and 0.3/0.3.
func DBLPGA1() *rank.GA {
	return rank.NewGA("GA1").
		Hop("Cites", 0, 1, 0.7).        // citing -> cited
		Hop("Writes", 0, 1, 0.3).       // paper -> author
		Hop("Writes", 1, 0, 0.1).       // author -> paper
		Direct("Paper", 0, true, 0.2).  // paper -> year
		Direct("Paper", 0, false, 0.2). // year -> papers
		Direct("Year", 0, true, 0.3).   // year -> conference
		Direct("Year", 0, false, 0.3)   // conference -> years
}

// DBLPGA2 is the paper's GA2 for DBLP: the same flow topology with common
// transfer rates of 0.3 on every edge.
func DBLPGA2() *rank.GA {
	return DBLPGA1().UniformLike("GA2", 0.3)
}

// AuthorGDS is the expert Author G_DS of Figure 2 with the paper's
// affinities: Paper 0.92, Co-Author 0.82, Year 0.83, Conference 0.78,
// PaperCites/PaperCitedBy 0.77.
func AuthorGDS() *schemagraph.GDS {
	g := schemagraph.New("Author")
	paper := g.Root.AddJunction("Paper", "Paper", "Writes", 1, 0, 0.92)
	paper.AddJunction("Co-Author", "Author", "Writes", 0, 1, 0.82)
	year := paper.AddParentFK("Year", "Year", 0, 0.83)
	year.AddParentFK("Conference", "Conference", 0, 0.78)
	paper.AddJunction("PaperCites", "Paper", "Cites", 0, 1, 0.77)
	paper.AddJunction("PaperCitedBy", "Paper", "Cites", 1, 0, 0.77)
	return g
}

// PaperGDS is the expert Paper G_DS (§6.2): Paper -> (Author, PaperCitedBy,
// PaperCites, Year -> Conference). The paper reports that local importance
// on this G_DS is monotone in practice, making Bottom-Up optimal (Lemma 2).
func PaperGDS() *schemagraph.GDS {
	g := schemagraph.New("Paper")
	g.Root.AddJunction("Author", "Author", "Writes", 0, 1, 0.85)
	g.Root.AddJunction("PaperCitedBy", "Paper", "Cites", 1, 0, 0.77)
	g.Root.AddJunction("PaperCites", "Paper", "Cites", 0, 1, 0.77)
	year := g.Root.AddParentFK("Year", "Year", 0, 0.83)
	year.AddParentFK("Conference", "Conference", 0, 0.78)
	return g
}
