package datagen

import (
	"reflect"
	"testing"

	"sizelos/internal/datagraph"
	"sizelos/internal/rank"
)

func smallDBLP() DBLPConfig {
	cfg := DefaultDBLPConfig()
	cfg.Authors = 60
	cfg.Papers = 300
	cfg.Conferences = 6
	cfg.YearSpan = 5
	return cfg
}

func TestGenerateDBLPIntegrity(t *testing.T) {
	db, err := GenerateDBLP(smallDBLP())
	if err != nil {
		t.Fatalf("GenerateDBLP: %v", err)
	}
	if errs := db.Validate(); len(errs) != 0 {
		t.Fatalf("referential integrity: %v", errs)
	}
	for rel, want := range map[string]int{
		"Conference": 6, "Year": 30, "Paper": 300, "Author": 60,
	} {
		if got := db.Relation(rel).Len(); got != want {
			t.Errorf("%s count = %d, want %d", rel, got, want)
		}
	}
	writes := db.Relation("Writes").Len()
	if writes < 300 {
		t.Errorf("Writes = %d, want >= one author per paper", writes)
	}
	if db.Relation("Cites").Len() == 0 {
		t.Error("no citations generated")
	}
}

func TestGenerateDBLPDeterministic(t *testing.T) {
	a, err := GenerateDBLP(smallDBLP())
	if err != nil {
		t.Fatalf("GenerateDBLP: %v", err)
	}
	b, err := GenerateDBLP(smallDBLP())
	if err != nil {
		t.Fatalf("GenerateDBLP: %v", err)
	}
	for _, rel := range a.Relations {
		if !reflect.DeepEqual(rel.Tuples, b.Relation(rel.Name).Tuples) {
			t.Errorf("relation %s differs between identical seeds", rel.Name)
		}
	}
	cfg := smallDBLP()
	cfg.Seed = 99
	c, err := GenerateDBLP(cfg)
	if err != nil {
		t.Fatalf("GenerateDBLP: %v", err)
	}
	if reflect.DeepEqual(a.Relation("Writes").Tuples, c.Relation("Writes").Tuples) {
		t.Error("different seeds produced identical Writes")
	}
}

func TestFamousAuthorsPresent(t *testing.T) {
	db, err := GenerateDBLP(smallDBLP())
	if err != nil {
		t.Fatalf("GenerateDBLP: %v", err)
	}
	author := db.Relation("Author")
	names := map[string]bool{}
	for _, tup := range author.Tuples {
		names[tup[1].Str] = true
	}
	for _, want := range famousAuthors {
		if !names[want] {
			t.Errorf("missing famous author %q", want)
		}
	}
}

func TestAuthorProductivitySkewed(t *testing.T) {
	db, err := GenerateDBLP(smallDBLP())
	if err != nil {
		t.Fatalf("GenerateDBLP: %v", err)
	}
	writes := db.Relation("Writes")
	counts := map[int64]int{}
	aCol := writes.ColIndex("author")
	for _, tup := range writes.Tuples {
		counts[tup[aCol].Int]++
	}
	// The first (famous) author must be far more productive than the
	// median author.
	first := counts[1]
	total := 0
	for _, c := range counts {
		total += c
	}
	avg := float64(total) / float64(len(counts))
	if float64(first) < 2*avg {
		t.Errorf("author 1 productivity %d not skewed (avg %.1f)", first, avg)
	}
}

func TestCitationsAcyclicAndNoSelf(t *testing.T) {
	db, err := GenerateDBLP(smallDBLP())
	if err != nil {
		t.Fatalf("GenerateDBLP: %v", err)
	}
	cites := db.Relation("Cites")
	for _, tup := range cites.Tuples {
		citing, cited := tup[1].Int, tup[2].Int
		if cited >= citing {
			t.Fatalf("citation %d -> %d violates temporal order", citing, cited)
		}
	}
}

func TestGenerateDBLPErrors(t *testing.T) {
	cfg := smallDBLP()
	cfg.Authors = 2 // fewer than the famous-author list
	if _, err := GenerateDBLP(cfg); err == nil {
		t.Error("too-few authors accepted")
	}
	cfg = smallDBLP()
	cfg.Papers = 0
	if _, err := GenerateDBLP(cfg); err == nil {
		t.Error("zero papers accepted")
	}
}

func TestDBLPGAsCompute(t *testing.T) {
	db, err := GenerateDBLP(smallDBLP())
	if err != nil {
		t.Fatalf("GenerateDBLP: %v", err)
	}
	g, err := datagraph.Build(db)
	if err != nil {
		t.Fatalf("datagraph.Build: %v", err)
	}
	for _, ga := range []*rank.GA{DBLPGA1(), DBLPGA2()} {
		scores, stats, err := rank.Compute(g, ga, rank.DefaultOptions())
		if err != nil {
			t.Fatalf("Compute(%s): %v", ga.Name, err)
		}
		if !stats.Converged {
			t.Errorf("%s did not converge", ga.Name)
		}
		if len(scores["Paper"]) != db.Relation("Paper").Len() {
			t.Errorf("%s: missing Paper scores", ga.Name)
		}
	}
}

func TestDBLPGDSsValidate(t *testing.T) {
	db, err := GenerateDBLP(smallDBLP())
	if err != nil {
		t.Fatalf("GenerateDBLP: %v", err)
	}
	if err := AuthorGDS().Validate(db); err != nil {
		t.Errorf("AuthorGDS invalid: %v", err)
	}
	if err := PaperGDS().Validate(db); err != nil {
		t.Errorf("PaperGDS invalid: %v", err)
	}
}

func TestAuthorGDSAnnotate(t *testing.T) {
	db, err := GenerateDBLP(smallDBLP())
	if err != nil {
		t.Fatalf("GenerateDBLP: %v", err)
	}
	g, err := datagraph.Build(db)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	scores, _, err := rank.Compute(g, DBLPGA1(), rank.DefaultOptions())
	if err != nil {
		t.Fatalf("Compute: %v", err)
	}
	gds := AuthorGDS()
	if err := gds.Annotate(db, scores); err != nil {
		t.Fatalf("Annotate: %v", err)
	}
	paper := gds.Find("Paper")
	if paper.Max <= 0 {
		t.Errorf("Paper.Max = %v, want > 0", paper.Max)
	}
	if paper.MMax <= 0 {
		t.Errorf("Paper.MMax = %v, want > 0 (cites replicas)", paper.MMax)
	}
	conf := gds.Find("Conference")
	if conf.MMax != 0 {
		t.Errorf("Conference.MMax = %v, want 0 (leaf)", conf.MMax)
	}
}
