package keyword

import (
	"strings"
	"unicode"

	"sizelos/internal/relational"
)

// Match is one data-subject candidate for a keyword query.
type Match struct {
	Relation string
	Tuple    relational.TupleID
	// Score is the tuple's global importance under the ranking setting the
	// index was asked to rank with; candidates are returned best-first.
	Score float64
}

// Searcher is the query-side contract of a keyword index. The engine holds
// its index through this interface so flat and sharded layouts (or a future
// remote index) are interchangeable; implementations must return identical
// results for identical corpora.
type Searcher interface {
	// Lookup returns the tuples of one relation containing every keyword
	// (logical AND over tokens), in ascending tuple order.
	Lookup(rel string, keywords []string) []relational.TupleID
	// Search ranks one relation's Lookup candidates by descending global
	// importance (ties by ascending tuple id).
	Search(dsRel, query string, scores relational.DBScores) []Match
	// SearchAll runs Search against every relation with at least one hit,
	// merged best-first (score desc, relation asc, tuple asc).
	SearchAll(query string, scores relational.DBScores) []Match
	// SearchStream is Search as a pull cursor: matches arrive in the same
	// order, one pop at a time, without materializing the full candidate
	// set up front.
	SearchStream(dsRel, query string, scores relational.DBScores) MatchStream
	// SearchAllStream is SearchAll as a pull cursor over the lazy merge of
	// every relation's frontier.
	SearchAllStream(query string, scores relational.DBScores) MatchStream
}

// Index is the flat inverted index token -> tuples, per relation. It is the
// serial reference implementation; Sharded must match it bit for bit.
type Index struct {
	db *relational.DB
	// postings[rel][token] lists tuple ids containing token in any string
	// attribute, in ascending order without duplicates.
	postings map[string]map[string][]relational.TupleID
}

var _ Searcher = (*Index)(nil)

// Tokenize lower-cases and splits a string on any non-letter/digit rune.
// It is exported so queries and documents are guaranteed to agree.
func Tokenize(s string) []string {
	return strings.FieldsFunc(strings.ToLower(s), func(r rune) bool {
		return !unicode.IsLetter(r) && !unicode.IsDigit(r)
	})
}

// BuildIndex indexes every string attribute of every relation.
//
// Tuples are scanned tuple-major (all string columns of tuple i before any
// column of tuple i+1) so postings stay ascending and a token occurring in
// several columns of the same tuple — or several times in one value —
// yields a single posting.
func BuildIndex(db *relational.DB) *Index {
	idx := &Index{db: db, postings: make(map[string]map[string][]relational.TupleID, len(db.Relations))}
	for _, rel := range db.Relations {
		tokens := make(map[string][]relational.TupleID)
		indexTuples(rel, stringColumns(rel), 0, rel.Len(), tokens)
		idx.postings[rel.Name] = tokens
	}
	return idx
}

// stringColumns returns the ordinals of rel's string-kind columns.
func stringColumns(rel *relational.Relation) []int {
	var cols []int
	for ci, col := range rel.Columns {
		if col.Kind == relational.KindString {
			cols = append(cols, ci)
		}
	}
	return cols
}

// postToken appends ti to tok's posting list unless ti is already the
// list's tail: the one dedup rule every build and maintenance path shares.
// It assumes tuple-major scans with ascending ids (so a tuple's repeat
// occurrences — a token in several columns, or several times in one value
// — are always the current tail), which is what keeps posting lists
// ascending and duplicate-free across all layouts.
func postToken(tokens map[string][]relational.TupleID, tok string, ti relational.TupleID) {
	list := tokens[tok]
	if len(list) > 0 && list[len(list)-1] == ti {
		return // same tuple already posted for this token
	}
	tokens[tok] = append(list, ti)
}

// indexTuples tokenizes the live tuples of [lo, hi) of rel into tokens,
// tuple-major; tombstoned slots contribute nothing.
func indexTuples(rel *relational.Relation, strCols []int, lo, hi int, tokens map[string][]relational.TupleID) {
	for ti := lo; ti < hi; ti++ {
		if rel.Deleted(relational.TupleID(ti)) {
			continue
		}
		tup := rel.Tuples[ti]
		for _, ci := range strCols {
			for _, tok := range Tokenize(tup[ci].Str) {
				postToken(tokens, tok, relational.TupleID(ti))
			}
		}
	}
}

// Lookup returns the tuples of one relation containing every keyword
// (logical AND over tokens, the R-KwS candidate semantics for a single
// relation).
func (idx *Index) Lookup(rel string, keywords []string) []relational.TupleID {
	tokens := idx.postings[rel]
	if tokens == nil || len(keywords) == 0 {
		return nil
	}
	var acc []relational.TupleID
	for i, kw := range keywords {
		list := tokens[strings.ToLower(kw)]
		if len(list) == 0 {
			return nil
		}
		if i == 0 {
			acc = append([]relational.TupleID(nil), list...)
			continue
		}
		acc = intersect(acc, list)
		if len(acc) == 0 {
			return nil
		}
	}
	return acc
}

// intersect merges two ascending posting lists.
func intersect(a, b []relational.TupleID) []relational.TupleID {
	var out []relational.TupleID
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] == b[j]:
			out = append(out, a[i])
			i++
			j++
		case a[i] < b[j]:
			i++
		default:
			j++
		}
	}
	return out
}

// Search finds the data-subject candidates for a keyword query within the
// given DS relation, ranked by descending global importance (ties by tuple
// id). This mirrors the paper's Q1: "Faloutsos" against Author returns the
// three brothers, each of which roots an OS. Implemented as a full drain of
// SearchStream so the materialized and streaming surfaces cannot drift.
func (idx *Index) Search(dsRel string, query string, scores relational.DBScores) []Match {
	return drainStream(idx.SearchStream(dsRel, query, scores))
}

// SearchAll runs Search against every relation that has at least one hit,
// useful when the DS relation is not known in advance (e.g. TPC-H queries
// naming either a customer or a supplier). Implemented as a full drain of
// SearchAllStream.
func (idx *Index) SearchAll(query string, scores relational.DBScores) []Match {
	return drainStream(idx.SearchAllStream(query, scores))
}

// matchLess is the global best-first order: score desc, relation asc,
// tuple asc. Total over any one database, so every layout agrees.
func matchLess(a, b Match) bool {
	if a.Score != b.Score {
		return a.Score > b.Score
	}
	if a.Relation != b.Relation {
		return a.Relation < b.Relation
	}
	return a.Tuple < b.Tuple
}
