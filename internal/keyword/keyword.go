// Package keyword implements the query front-end of the OS paradigm: an
// inverted index over string attributes that maps a keyword query to the
// data-subject tuples t_DS containing the keyword(s) as part of an
// attribute's value (paper §2.1). One size-l OS is then produced per
// matching DS tuple, as in Example 5.
package keyword

import (
	"sort"
	"strings"
	"unicode"

	"sizelos/internal/relational"
)

// Match is one data-subject candidate for a keyword query.
type Match struct {
	Relation string
	Tuple    relational.TupleID
	// Score is the tuple's global importance under the ranking setting the
	// index was asked to rank with; candidates are returned best-first.
	Score float64
}

// Index is an inverted index token -> tuples, per relation.
type Index struct {
	db *relational.DB
	// postings[rel][token] lists tuple ids containing token in any string
	// attribute, in ascending order.
	postings map[string]map[string][]relational.TupleID
}

// Tokenize lower-cases and splits a string on any non-letter/digit rune.
// It is exported so queries and documents are guaranteed to agree.
func Tokenize(s string) []string {
	return strings.FieldsFunc(strings.ToLower(s), func(r rune) bool {
		return !unicode.IsLetter(r) && !unicode.IsDigit(r)
	})
}

// BuildIndex indexes every string attribute of every relation.
func BuildIndex(db *relational.DB) *Index {
	idx := &Index{db: db, postings: make(map[string]map[string][]relational.TupleID)}
	for _, rel := range db.Relations {
		tokens := make(map[string][]relational.TupleID)
		for ci, col := range rel.Columns {
			if col.Kind != relational.KindString {
				continue
			}
			for ti, tup := range rel.Tuples {
				for _, tok := range Tokenize(tup[ci].Str) {
					list := tokens[tok]
					if len(list) > 0 && list[len(list)-1] == relational.TupleID(ti) {
						continue // same tuple, multiple hits
					}
					tokens[tok] = append(list, relational.TupleID(ti))
				}
			}
		}
		idx.postings[rel.Name] = tokens
	}
	return idx
}

// Lookup returns the tuples of one relation containing every keyword
// (logical AND over tokens, the R-KwS candidate semantics for a single
// relation).
func (idx *Index) Lookup(rel string, keywords []string) []relational.TupleID {
	tokens := idx.postings[rel]
	if tokens == nil || len(keywords) == 0 {
		return nil
	}
	var acc []relational.TupleID
	for i, kw := range keywords {
		list := tokens[strings.ToLower(kw)]
		if len(list) == 0 {
			return nil
		}
		if i == 0 {
			acc = append([]relational.TupleID(nil), list...)
			continue
		}
		acc = intersect(acc, list)
		if len(acc) == 0 {
			return nil
		}
	}
	return acc
}

// intersect merges two ascending posting lists.
func intersect(a, b []relational.TupleID) []relational.TupleID {
	var out []relational.TupleID
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] == b[j]:
			out = append(out, a[i])
			i++
			j++
		case a[i] < b[j]:
			i++
		default:
			j++
		}
	}
	return out
}

// Search finds the data-subject candidates for a keyword query within the
// given DS relation, ranked by descending global importance (ties by tuple
// id). This mirrors the paper's Q1: "Faloutsos" against Author returns the
// three brothers, each of which roots an OS.
func (idx *Index) Search(dsRel string, query string, scores relational.DBScores) []Match {
	keywords := Tokenize(query)
	ids := idx.Lookup(dsRel, keywords)
	if len(ids) == 0 {
		return nil
	}
	s := scores[dsRel]
	out := make([]Match, 0, len(ids))
	for _, id := range ids {
		m := Match{Relation: dsRel, Tuple: id}
		if int(id) < len(s) {
			m.Score = s[id]
		}
		out = append(out, m)
	}
	sort.SliceStable(out, func(a, b int) bool {
		if out[a].Score != out[b].Score {
			return out[a].Score > out[b].Score
		}
		return out[a].Tuple < out[b].Tuple
	})
	return out
}

// SearchAll runs Search against every relation that has at least one hit,
// useful when the DS relation is not known in advance (e.g. TPC-H queries
// naming either a customer or a supplier).
func (idx *Index) SearchAll(query string, scores relational.DBScores) []Match {
	var out []Match
	for _, rel := range idx.db.Relations {
		out = append(out, idx.Search(rel.Name, query, scores)...)
	}
	sort.SliceStable(out, func(a, b int) bool {
		if out[a].Score != out[b].Score {
			return out[a].Score > out[b].Score
		}
		if out[a].Relation != out[b].Relation {
			return out[a].Relation < out[b].Relation
		}
		return out[a].Tuple < out[b].Tuple
	})
	return out
}
