package keyword

import (
	"fmt"
	"reflect"
	"testing"

	"sizelos/internal/datagen"
	"sizelos/internal/relational"
)

// TestRemapMatchesRebuild tombstones a slice of DBLP authors and papers,
// applies the posting deltas, compacts the relations, remaps both index
// layouts, and asserts each is identical — tokens and exact posting lists —
// to an index rebuilt from the compacted database.
func TestRemapMatchesRebuild(t *testing.T) {
	cfg := datagen.DefaultDBLPConfig()
	cfg.Authors = 60
	cfg.Papers = 150
	db, err := datagen.GenerateDBLP(cfg)
	if err != nil {
		t.Fatalf("GenerateDBLP: %v", err)
	}
	flat := BuildIndex(db)
	sharded := BuildSharded(db, ShardedOptions{NumShards: 4})

	// Cascade every fifth paper away: its Writes/Cites referencers first
	// (ints only, no postings), then the paper itself (whose title tokens
	// must leave the posting lists). Paper — a relation with real string
	// postings — is then compacted and remapped.
	var batch relational.Batch
	paper := db.Relation("Paper")
	seen := map[string]bool{}
	for i := 0; i < paper.Len(); i += 5 {
		pk := paper.PK(relational.TupleID(i))
		for _, ref := range db.ReferencingTuples("Paper", pk) {
			r := db.Relation(ref.Rel)
			for _, id := range ref.IDs {
				key := fmt.Sprintf("%s:%d", ref.Rel, r.PK(id))
				if seen[key] {
					continue // a Cites row can reference two doomed papers
				}
				seen[key] = true
				batch.Deletes = append(batch.Deletes, relational.DeleteOp{Rel: ref.Rel, PK: r.PK(id)})
			}
		}
		batch.Deletes = append(batch.Deletes, relational.DeleteOp{Rel: "Paper", PK: pk})
	}
	res, err := db.Apply(batch)
	if err != nil {
		t.Fatalf("Apply: %v", err)
	}
	for rel := range batch.Relations() {
		flat.Apply(rel, res.Inserted[rel], res.Deleted[rel])
		sharded.Apply(rel, res.Inserted[rel], res.Deleted[rel])
	}

	remap := paper.Compact()
	if remap == nil {
		t.Fatal("Compact returned nil")
	}
	flat.Remap("Paper", remap)
	sharded.Remap("Paper", remap)

	wantFlat := BuildIndex(db)
	if !reflect.DeepEqual(flat.postings, wantFlat.postings) {
		t.Fatal("flat postings after Remap differ from rebuild")
	}
	wantSharded := BuildSharded(db, ShardedOptions{NumShards: 4})
	if !reflect.DeepEqual(sharded.shards, wantSharded.shards) {
		t.Fatal("sharded postings after Remap differ from rebuild")
	}

	// Queries through both layouts agree post-compaction.
	for _, q := range []string{"the", "mining", "data"} {
		if got, want := flat.Lookup("Paper", Tokenize(q)), wantFlat.Lookup("Paper", Tokenize(q)); !reflect.DeepEqual(got, want) {
			t.Fatalf("Lookup(%q) = %v, want %v", q, got, want)
		}
	}
}

// TestRemapUnknownRelation must not panic or create phantom entries.
func TestRemapUnknownRelation(t *testing.T) {
	cfg := datagen.DefaultDBLPConfig()
	cfg.Authors = 10
	cfg.Papers = 20
	db, err := datagen.GenerateDBLP(cfg)
	if err != nil {
		t.Fatalf("GenerateDBLP: %v", err)
	}
	BuildIndex(db).Remap("Nope", nil)
	BuildSharded(db, ShardedOptions{NumShards: 2}).Remap("Nope", nil)
}
