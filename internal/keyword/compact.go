package keyword

// Physical compaction support: when the storage layer reclaims tombstoned
// slots, every TupleID of the compacted relation shifts down. Posting lists
// hold live tuples only (deletes retract their postings immediately), so
// the index never needs re-tokenizing — remapping the stored ids is enough,
// and because the remap is monotonic over live ids the lists stay ascending
// and deduplicated, exactly what a rebuild over the compacted database
// would produce.

import (
	"sizelos/internal/relational"
	"sizelos/internal/searchexec"
)

// Compactor is the compaction-side contract of a keyword index: Remap
// rewrites one relation's posting ids after the storage layer physically
// compacted it. remap[old] is the new TupleID of each slot, -1 for
// reclaimed tombstones; no live posting may map to -1. Like Maintainer,
// Remap must be serialized against lookups by the caller.
type Compactor interface {
	Remap(rel string, remap []relational.TupleID)
}

var (
	_ Compactor = (*Index)(nil)
	_ Compactor = (*Sharded)(nil)
)

// remapPostings rewrites every posting list of one relation's token map in
// place under the monotonic remap.
func remapPostings(postings map[string][]relational.TupleID, remap []relational.TupleID) {
	for _, list := range postings {
		for i, id := range list {
			list[i] = remap[id]
		}
	}
}

// Remap implements Compactor for the flat index.
func (idx *Index) Remap(rel string, remap []relational.TupleID) {
	if postings := idx.postings[rel]; postings != nil {
		remapPostings(postings, remap)
	}
}

// Remap implements Compactor for the sharded index: shards partition by
// token, so every shard's slice of the relation remaps independently, one
// goroutine per shard.
func (idx *Sharded) Remap(rel string, remap []relational.TupleID) {
	if !idx.known[rel] {
		return
	}
	_ = searchexec.ForEach(idx.numShards, idx.numShards, func(s int) error {
		if postings := idx.shards[s][rel]; postings != nil {
			remapPostings(postings, remap)
		}
		return nil
	})
}
