package keyword

// This file implements incremental index maintenance: when the database
// mutates, the engine retracts the postings of deleted tuples and adds
// those of inserted ones instead of re-tokenizing the whole corpus. Both
// layouts implement the Maintainer contract and are required to end up
// bit-identical to a from-scratch rebuild over the mutated database — the
// flat index by merging into its single posting map, the sharded index by
// routing each touched token to the one FNV shard it lives in and applying
// the shard deltas in parallel.

import (
	"sizelos/internal/relational"
	"sizelos/internal/searchexec"
)

// Maintainer is the maintenance-side contract of a keyword index: Apply
// folds one relation's mutation batch into the index. inserted and deleted
// are ascending TupleID lists; deleted tuples must still hold their content
// (the storage layer's tombstones guarantee this) so their tokens can be
// retracted. Apply is not safe to run concurrently with lookups — the
// engine serializes mutations against in-flight searches.
type Maintainer interface {
	Apply(rel string, inserted, deleted []relational.TupleID)
}

var (
	_ Maintainer = (*Index)(nil)
	_ Maintainer = (*Sharded)(nil)
)

// collectTokens tokenizes the given tuples of rel tuple-major into a
// token -> ascending deduplicated ids map. Unlike indexTuples it takes an
// explicit id list and ignores tombstones: the delete path tokenizes tuples
// that are already tombstoned.
func collectTokens(rel *relational.Relation, strCols []int, ids []relational.TupleID) map[string][]relational.TupleID {
	if len(ids) == 0 || len(strCols) == 0 {
		return nil
	}
	tokens := make(map[string][]relational.TupleID)
	for _, ti := range ids {
		tup := rel.Tuples[ti]
		for _, ci := range strCols {
			for _, tok := range Tokenize(tup[ci].Str) {
				postToken(tokens, tok, ti)
			}
		}
	}
	return tokens
}

// removePostings filters the ascending ids out of the ascending posting
// list in one linear merge, preserving order.
func removePostings(list, ids []relational.TupleID) []relational.TupleID {
	out := list[:0]
	j := 0
	for _, id := range list {
		for j < len(ids) && ids[j] < id {
			j++
		}
		if j < len(ids) && ids[j] == id {
			continue
		}
		out = append(out, id)
	}
	return out
}

// mergePostings merges the ascending ids into the ascending posting list,
// deduplicating, so the result is exactly what a rebuild would produce. The
// common case — fresh inserts carry ids larger than every existing posting
// — degenerates to an append.
func mergePostings(list, ids []relational.TupleID) []relational.TupleID {
	if len(list) == 0 || list[len(list)-1] < ids[0] {
		return append(list, ids...)
	}
	out := make([]relational.TupleID, 0, len(list)+len(ids))
	i, j := 0, 0
	for i < len(list) && j < len(ids) {
		switch {
		case list[i] < ids[j]:
			out = append(out, list[i])
			i++
		case ids[j] < list[i]:
			out = append(out, ids[j])
			j++
		default:
			out = append(out, list[i])
			i++
			j++
		}
	}
	out = append(out, list[i:]...)
	out = append(out, ids[j:]...)
	return out
}

// applyToPostings folds removal and addition token maps into one relation's
// token -> postings map, deleting entries that empty out (a rebuild never
// materializes an empty posting list).
func applyToPostings(postings map[string][]relational.TupleID, rem, add map[string][]relational.TupleID) {
	for tok, ids := range rem {
		list := removePostings(postings[tok], ids)
		if len(list) == 0 {
			delete(postings, tok)
		} else {
			postings[tok] = list
		}
	}
	for tok, ids := range add {
		postings[tok] = mergePostings(postings[tok], ids)
	}
}

// Apply implements Maintainer for the flat index.
func (idx *Index) Apply(rel string, inserted, deleted []relational.TupleID) {
	r := idx.db.Relation(rel)
	if r == nil {
		return
	}
	strCols := stringColumns(r)
	postings := idx.postings[rel]
	if postings == nil {
		postings = make(map[string][]relational.TupleID)
		idx.postings[rel] = postings
	}
	applyToPostings(postings,
		collectTokens(r, strCols, deleted),
		collectTokens(r, strCols, inserted))
}

// Apply implements Maintainer for the sharded index: the batch's token
// deltas are partitioned by the same FNV hash that placed them at build
// time, then every touched shard folds its slice of the delta in parallel,
// one goroutine per shard, never crossing shard boundaries.
func (idx *Sharded) Apply(rel string, inserted, deleted []relational.TupleID) {
	if !idx.known[rel] {
		return
	}
	r := idx.db.Relation(rel)
	strCols := stringColumns(r)
	rem := partitionByShard(collectTokens(r, strCols, deleted), idx.numShards)
	add := partitionByShard(collectTokens(r, strCols, inserted), idx.numShards)
	_ = searchexec.ForEach(idx.numShards, idx.numShards, func(s int) error {
		if len(rem[s]) == 0 && len(add[s]) == 0 {
			return nil
		}
		relMap := idx.shards[s][rel]
		if relMap == nil {
			relMap = make(map[string][]relational.TupleID, len(add[s]))
			idx.shards[s][rel] = relMap
		}
		applyToPostings(relMap, rem[s], add[s])
		return nil
	})
}

// partitionByShard splits one token map into per-shard token maps under
// shardOf, the index's placement function.
func partitionByShard(tokens map[string][]relational.TupleID, numShards int) []map[string][]relational.TupleID {
	out := make([]map[string][]relational.TupleID, numShards)
	for tok, ids := range tokens {
		s := shardOf(tok, numShards)
		if out[s] == nil {
			out[s] = make(map[string][]relational.TupleID)
		}
		out[s][tok] = ids
	}
	return out
}
