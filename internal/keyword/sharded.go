package keyword

import (
	"runtime"
	"strings"

	"sizelos/internal/relational"
	"sizelos/internal/searchexec"
)

// Sharded is an inverted index whose tokens are hash-partitioned across
// NumShards independent posting maps. Construction tokenizes the column
// stream in parallel chunks and lets one goroutine per shard own its map;
// each lookup probes only the shard its keyword hashes to, and SearchAll
// fans out across relations and merges the rankings best-first.
// Results are bit-identical to the flat Index at any shard count: postings
// per (relation, token) are the same ascending deduplicated lists, only
// their physical placement differs.
type Sharded struct {
	db        *relational.DB
	numShards int
	// shards[s][rel][token] holds the postings of every token hashing to
	// shard s. Concurrent lookups need no locking; the only writer after
	// BuildSharded is Apply, which callers must serialize against lookups
	// (the engine holds its write lock across mutations).
	shards []map[string]map[string][]relational.TupleID
	// known marks relation names present in db, mirroring the flat index's
	// "unknown relation -> nil" behavior without probing every shard.
	known map[string]bool
}

var _ Searcher = (*Sharded)(nil)

// ShardedOptions tunes BuildSharded. The zero value picks sensible
// defaults: one shard per CPU and a GOMAXPROCS-wide tokenizer pool.
type ShardedOptions struct {
	// NumShards is the number of token partitions (<= 0: DefaultNumShards).
	// Shard count affects layout and build/query parallelism only, never
	// results.
	NumShards int
	// Workers bounds the parallel tokenizer scanning the column stream
	// (<= 0: GOMAXPROCS).
	Workers int
}

// DefaultNumShards is one shard per available CPU, the build and fan-out
// sweet spot.
func DefaultNumShards() int {
	if n := runtime.GOMAXPROCS(0); n > 1 {
		return n
	}
	return 1
}

// shardOf routes a token to its shard by FNV-1a hash. Inlined rather than
// hash/fnv to keep the per-token hot path allocation-free.
func shardOf(token string, numShards int) int {
	h := uint32(2166136261)
	for i := 0; i < len(token); i++ {
		h ^= uint32(token[i])
		h *= 16777619
	}
	return int(h % uint32(numShards))
}

// chunkTuples is the tuple-count granule of the parallel tokenizer. Small
// enough that even one large relation fans out across every worker, large
// enough that per-chunk map overhead stays negligible.
const chunkTuples = 1024

// buildChunk is one contiguous tuple range of one relation in the
// tokenized column stream.
type buildChunk struct {
	rel     *relational.Relation
	strCols []int
	lo, hi  int
}

// BuildSharded indexes every string attribute of every relation into a
// token-partitioned index. The column stream is tokenized by a worker pool
// in relation-ordered chunks (phase 1), then one goroutine per shard
// concatenates its chunk-local postings in stream order (phase 2), so every
// posting list comes out ascending and deduplicated exactly like
// BuildIndex's.
func BuildSharded(db *relational.DB, opts ShardedOptions) *Sharded {
	numShards := opts.NumShards
	if numShards <= 0 {
		numShards = DefaultNumShards()
	}
	idx := &Sharded{
		db:        db,
		numShards: numShards,
		shards:    make([]map[string]map[string][]relational.TupleID, numShards),
		known:     make(map[string]bool, len(db.Relations)),
	}
	var chunks []buildChunk
	for _, rel := range db.Relations {
		idx.known[rel.Name] = true
		strCols := stringColumns(rel)
		for lo := 0; lo < rel.Len(); lo += chunkTuples {
			hi := lo + chunkTuples
			if hi > rel.Len() {
				hi = rel.Len()
			}
			chunks = append(chunks, buildChunk{rel: rel, strCols: strCols, lo: lo, hi: hi})
		}
	}

	// Phase 1: tokenize chunks in parallel; each worker routes its tokens
	// into chunk-local per-shard maps, deduplicating within the chunk.
	local := make([][]map[string][]relational.TupleID, len(chunks))
	_ = searchexec.ForEach(len(chunks), opts.Workers, func(i int) error {
		local[i] = tokenizeChunk(chunks[i], numShards)
		return nil
	})

	// Phase 2: one goroutine per shard replays the stream in chunk order.
	// Chunk tuple ranges are disjoint and ascending per relation, so plain
	// concatenation preserves the flat index's posting order and dedup.
	_ = searchexec.ForEach(numShards, numShards, func(s int) error {
		shard := make(map[string]map[string][]relational.TupleID)
		for i, ch := range chunks {
			m := local[i][s]
			if len(m) == 0 {
				continue
			}
			relMap := shard[ch.rel.Name]
			if relMap == nil {
				relMap = make(map[string][]relational.TupleID, len(m))
				shard[ch.rel.Name] = relMap
			}
			for tok, ids := range m {
				relMap[tok] = append(relMap[tok], ids...)
			}
		}
		idx.shards[s] = shard
		return nil
	})
	return idx
}

// tokenizeChunk scans the live tuples of [lo, hi) of one relation
// tuple-major and returns per-shard token -> postings maps for that range;
// tombstoned slots contribute nothing.
func tokenizeChunk(ch buildChunk, numShards int) []map[string][]relational.TupleID {
	out := make([]map[string][]relational.TupleID, numShards)
	for ti := ch.lo; ti < ch.hi; ti++ {
		if ch.rel.Deleted(relational.TupleID(ti)) {
			continue
		}
		tup := ch.rel.Tuples[ti]
		for _, ci := range ch.strCols {
			for _, tok := range Tokenize(tup[ci].Str) {
				s := shardOf(tok, numShards)
				if out[s] == nil {
					out[s] = make(map[string][]relational.TupleID)
				}
				postToken(out[s], tok, relational.TupleID(ti))
			}
		}
	}
	return out
}

// NumShards reports the index's partition count.
func (idx *Sharded) NumShards() int { return idx.numShards }

// postings returns one token's posting list in one relation, probing only
// the shard the token hashes to.
func (idx *Sharded) postings(rel, token string) []relational.TupleID {
	relMap := idx.shards[shardOf(token, idx.numShards)][rel]
	if relMap == nil {
		return nil
	}
	return relMap[token]
}

// Lookup returns the tuples of one relation containing every keyword
// (logical AND over tokens). Each keyword's posting list is fetched from
// the one shard it hashes to (a pair of map probes — far too cheap to be
// worth a goroutine per keyword), then intersected in keyword order
// exactly like the flat index. Query-level parallelism lives one level up,
// in SearchAll's per-relation fan-out.
func (idx *Sharded) Lookup(rel string, keywords []string) []relational.TupleID {
	if !idx.known[rel] || len(keywords) == 0 {
		return nil
	}
	var acc []relational.TupleID
	for i, kw := range keywords {
		list := idx.postings(rel, strings.ToLower(kw))
		if len(list) == 0 {
			return nil
		}
		if i == 0 {
			acc = append([]relational.TupleID(nil), list...)
			continue
		}
		acc = intersect(acc, list)
		if len(acc) == 0 {
			return nil
		}
	}
	return acc
}

// Search ranks one relation's candidates best-first, identical to
// (*Index).Search. Like the flat layout it drains SearchStream, so the
// materialized and streaming surfaces share one code path.
func (idx *Sharded) Search(dsRel string, query string, scores relational.DBScores) []Match {
	return drainStream(idx.SearchStream(dsRel, query, scores))
}

// SearchAll builds one frontier per relation across a worker pool and
// drains their lazy best-first merge into the flat index's global order
// (score desc, relation asc, tuple asc).
func (idx *Sharded) SearchAll(query string, scores relational.DBScores) []Match {
	return drainStream(idx.SearchAllStream(query, scores))
}
