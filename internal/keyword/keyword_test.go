package keyword

import (
	"reflect"
	"testing"

	"sizelos/internal/relational"
)

func libraryDB(t *testing.T) *relational.DB {
	t.Helper()
	db := relational.NewDB("lib")
	author := relational.MustNewRelation("Author",
		[]relational.Column{
			{Name: "id", Kind: relational.KindInt},
			{Name: "name", Kind: relational.KindString},
		}, "id", nil)
	book := relational.MustNewRelation("Book",
		[]relational.Column{
			{Name: "id", Kind: relational.KindInt},
			{Name: "title", Kind: relational.KindString},
			{Name: "blurb", Kind: relational.KindString},
		}, "id", nil)
	db.MustAddRelation(author)
	db.MustAddRelation(book)
	author.MustInsert(relational.Tuple{relational.IntVal(1), relational.StrVal("Christos Faloutsos")})
	author.MustInsert(relational.Tuple{relational.IntVal(2), relational.StrVal("Michalis Faloutsos")})
	author.MustInsert(relational.Tuple{relational.IntVal(3), relational.StrVal("Rakesh Agrawal")})
	book.MustInsert(relational.Tuple{relational.IntVal(1), relational.StrVal("Graph Mining"), relational.StrVal("power laws by Faloutsos")})
	book.MustInsert(relational.Tuple{relational.IntVal(2), relational.StrVal("Mining the Web"), relational.StrVal("classic text")})
	return db
}

func TestTokenize(t *testing.T) {
	tests := []struct {
		in   string
		want []string
	}{
		{"Christos Faloutsos", []string{"christos", "faloutsos"}},
		{"Power-law, Topology!", []string{"power", "law", "topology"}},
		{"", nil},
		{"  ", nil},
		{"C3PO meets R2D2", []string{"c3po", "meets", "r2d2"}},
	}
	for _, tc := range tests {
		got := Tokenize(tc.in)
		if len(got) == 0 && len(tc.want) == 0 {
			continue
		}
		if !reflect.DeepEqual(got, tc.want) {
			t.Errorf("Tokenize(%q) = %v, want %v", tc.in, got, tc.want)
		}
	}
}

func TestLookupSingleKeyword(t *testing.T) {
	idx := BuildIndex(libraryDB(t))
	got := idx.Lookup("Author", []string{"faloutsos"})
	want := []relational.TupleID{0, 1}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Lookup(faloutsos) = %v, want %v", got, want)
	}
}

func TestLookupAND(t *testing.T) {
	idx := BuildIndex(libraryDB(t))
	got := idx.Lookup("Author", []string{"christos", "faloutsos"})
	if !reflect.DeepEqual(got, []relational.TupleID{0}) {
		t.Errorf("Lookup(christos faloutsos) = %v, want [0]", got)
	}
	if got := idx.Lookup("Author", []string{"christos", "agrawal"}); got != nil {
		t.Errorf("conflicting keywords matched %v", got)
	}
}

func TestLookupMisses(t *testing.T) {
	idx := BuildIndex(libraryDB(t))
	if got := idx.Lookup("Author", []string{"nobody"}); got != nil {
		t.Errorf("Lookup(nobody) = %v", got)
	}
	if got := idx.Lookup("Ghost", []string{"faloutsos"}); got != nil {
		t.Errorf("Lookup on unknown relation = %v", got)
	}
	if got := idx.Lookup("Author", nil); got != nil {
		t.Errorf("Lookup with no keywords = %v", got)
	}
}

func TestLookupMultipleColumns(t *testing.T) {
	idx := BuildIndex(libraryDB(t))
	// "mining" appears in two books' titles; "faloutsos" in one blurb.
	got := idx.Lookup("Book", []string{"mining"})
	if !reflect.DeepEqual(got, []relational.TupleID{0, 1}) {
		t.Errorf("Lookup(mining) = %v", got)
	}
	got = idx.Lookup("Book", []string{"mining", "faloutsos"})
	if !reflect.DeepEqual(got, []relational.TupleID{0}) {
		t.Errorf("Lookup(mining faloutsos) = %v", got)
	}
}

func TestSearchRanked(t *testing.T) {
	db := libraryDB(t)
	idx := BuildIndex(db)
	scores := relational.DBScores{
		"Author": relational.Scores{1.0, 7.0, 3.0}, // Michalis outranks Christos
		"Book":   relational.Scores{1, 1},
	}
	got := idx.Search("Author", "Faloutsos", scores)
	if len(got) != 2 {
		t.Fatalf("Search returned %d matches, want 2", len(got))
	}
	if got[0].Tuple != 1 || got[1].Tuple != 0 {
		t.Errorf("ranking wrong: %+v", got)
	}
	if got[0].Score != 7 {
		t.Errorf("score = %v, want 7", got[0].Score)
	}
}

func TestSearchAll(t *testing.T) {
	db := libraryDB(t)
	idx := BuildIndex(db)
	scores := relational.DBScores{
		"Author": relational.Scores{1, 2, 3},
		"Book":   relational.Scores{9, 1},
	}
	got := idx.SearchAll("faloutsos", scores)
	if len(got) != 3 {
		t.Fatalf("SearchAll returned %d matches, want 3 (2 authors + 1 book)", len(got))
	}
	if got[0].Relation != "Book" || got[0].Tuple != 0 {
		t.Errorf("best match should be the book (score 9): %+v", got[0])
	}
}

func TestSearchEmptyQuery(t *testing.T) {
	idx := BuildIndex(libraryDB(t))
	if got := idx.Search("Author", "  ", relational.DBScores{}); got != nil {
		t.Errorf("empty query matched %v", got)
	}
}

// TestCrossColumnDedup is the regression test for the adjacent-only dedup
// bug: a token appearing in two different string columns of the same tuple
// used to produce a duplicate posting (the old column-major scan only
// collapsed repeats within one column), which in turn broke the ascending
// order the intersection relies on.
func TestCrossColumnDedup(t *testing.T) {
	db := relational.NewDB("dups")
	doc := relational.MustNewRelation("Doc",
		[]relational.Column{
			{Name: "id", Kind: relational.KindInt},
			{Name: "title", Kind: relational.KindString},
			{Name: "body", Kind: relational.KindString},
		}, "id", nil)
	db.MustAddRelation(doc)
	// "graphs" in both columns of tuple 0; "mining" only in tuple 1's body,
	// then both columns of tuple 2 — the old scan produced [1 2 0 2].
	doc.MustInsert(relational.Tuple{relational.IntVal(1), relational.StrVal("Graphs Everywhere"), relational.StrVal("a book about graphs")})
	doc.MustInsert(relational.Tuple{relational.IntVal(2), relational.StrVal("Streams"), relational.StrVal("stream mining")})
	doc.MustInsert(relational.Tuple{relational.IntVal(3), relational.StrVal("Mining"), relational.StrVal("mining text")})

	for name, idx := range map[string]Searcher{
		"flat":    BuildIndex(db),
		"sharded": BuildSharded(db, ShardedOptions{NumShards: 4}),
	} {
		if got, want := idx.Lookup("Doc", []string{"graphs"}), []relational.TupleID{0}; !reflect.DeepEqual(got, want) {
			t.Errorf("%s: Lookup(graphs) = %v, want %v (cross-column duplicate)", name, got, want)
		}
		if got, want := idx.Lookup("Doc", []string{"mining"}), []relational.TupleID{1, 2}; !reflect.DeepEqual(got, want) {
			t.Errorf("%s: Lookup(mining) = %v, want %v (postings must stay ascending and unique)", name, got, want)
		}
		// The AND path would previously see the unsorted [1 2 0 2] list and
		// drop tuple 2 from intersections.
		if got, want := idx.Lookup("Doc", []string{"mining", "text"}), []relational.TupleID{2}; !reflect.DeepEqual(got, want) {
			t.Errorf("%s: Lookup(mining text) = %v, want %v", name, got, want)
		}
	}
}

func TestIntersect(t *testing.T) {
	tests := []struct {
		a, b, want []relational.TupleID
	}{
		{[]relational.TupleID{1, 2, 3}, []relational.TupleID{2, 3, 4}, []relational.TupleID{2, 3}},
		{[]relational.TupleID{1}, []relational.TupleID{2}, nil},
		{nil, []relational.TupleID{1}, nil},
		{[]relational.TupleID{5, 9}, []relational.TupleID{5, 9}, []relational.TupleID{5, 9}},
	}
	for _, tc := range tests {
		if got := intersect(tc.a, tc.b); !reflect.DeepEqual(got, tc.want) {
			t.Errorf("intersect(%v,%v) = %v, want %v", tc.a, tc.b, got, tc.want)
		}
	}
}
