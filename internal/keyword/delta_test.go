package keyword

import (
	"fmt"
	"reflect"
	"sort"
	"testing"

	"sizelos/internal/relational"
)

// postingsOf normalizes any index layout to rel -> token -> postings,
// dropping empty lists and empty relation maps, so physically different
// layouts (and maps that emptied out incrementally) compare bit-for-bit at
// the level queries observe.
func postingsOf(t *testing.T, idx Searcher) map[string]map[string][]relational.TupleID {
	t.Helper()
	out := make(map[string]map[string][]relational.TupleID)
	add := func(rel, tok string, ids []relational.TupleID) {
		if len(ids) == 0 {
			return
		}
		m := out[rel]
		if m == nil {
			m = make(map[string][]relational.TupleID)
			out[rel] = m
		}
		if _, dup := m[tok]; dup {
			t.Fatalf("token %q of %s appears in two shards", tok, rel)
		}
		m[tok] = append([]relational.TupleID(nil), ids...)
	}
	switch v := idx.(type) {
	case *Index:
		for rel, tokens := range v.postings {
			for tok, ids := range tokens {
				add(rel, tok, ids)
			}
		}
	case *Sharded:
		for _, shard := range v.shards {
			for rel, tokens := range shard {
				for tok, ids := range tokens {
					add(rel, tok, ids)
				}
			}
		}
	default:
		t.Fatalf("unknown layout %T", idx)
	}
	return out
}

// referencedBy maps relation name -> relations owning an FK into it.
func referencedBy(db *relational.DB) map[string][]string {
	out := make(map[string][]string)
	for _, r := range db.Relations {
		for _, fk := range r.FKs {
			out[fk.Ref] = append(out[fk.Ref], r.Name)
		}
	}
	return out
}

// anyToken returns the lexicographically first token of one relation in
// the flat index, or "" when the relation has no string content.
func anyToken(flat *Index, rel string) string {
	tokens := flat.postings[rel]
	best := ""
	for tok := range tokens {
		if best == "" || tok < best {
			best = tok
		}
	}
	return best
}

// mutationBatch builds a deterministic, schema-valid batch against db:
// deletes from every unreferenced relation, one cascaded delete of a
// string-bearing referenced tuple (children first), and two inserts per
// relation whose string values mix an existing token (merges into a live
// posting list) with fresh ones (new posting lists).
func mutationBatch(t *testing.T, db *relational.DB, flat *Index, round int) relational.Batch {
	t.Helper()
	refs := referencedBy(db)
	var batch relational.Batch
	deleting := make(map[string]map[int64]bool)
	addDelete := func(rel string, pk int64) {
		if deleting[rel] == nil {
			deleting[rel] = make(map[int64]bool)
		}
		if deleting[rel][pk] {
			return
		}
		deleting[rel][pk] = true
		batch.Deletes = append(batch.Deletes, relational.DeleteOp{Rel: rel, PK: pk})
	}
	liveIDs := func(r *relational.Relation) []relational.TupleID {
		var out []relational.TupleID
		for i := 0; i < r.Len(); i++ {
			if !r.Deleted(relational.TupleID(i)) {
				out = append(out, relational.TupleID(i))
			}
		}
		return out
	}

	// One cascaded delete: a referenced relation with string content whose
	// referencers are all themselves unreferenced.
	for _, r := range db.Relations {
		if len(refs[r.Name]) == 0 || len(stringColumns(r)) == 0 {
			continue
		}
		ok := true
		for _, owner := range refs[r.Name] {
			if len(refs[owner]) > 0 {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		live := liveIDs(r)
		if len(live) == 0 {
			continue
		}
		victim := live[len(live)-1]
		pk := r.PK(victim)
		for _, ownerName := range refs[r.Name] {
			owner := db.Relation(ownerName)
			// An owner may hold several FKs into the victim's relation
			// (Cites has citing and cited): retract through every one.
			for j, fk := range owner.FKs {
				if fk.Ref != r.Name {
					continue
				}
				for _, child := range db.JoinChildren(owner, j, pk) {
					addDelete(ownerName, owner.PK(child))
				}
			}
		}
		addDelete(r.Name, pk)
		break
	}
	// Plain deletes from unreferenced relations.
	for _, r := range db.Relations {
		if len(refs[r.Name]) > 0 {
			continue
		}
		live := liveIDs(r)
		for i := 0; i < 2 && i < len(live); i++ {
			addDelete(r.Name, r.PK(live[i]))
		}
	}
	// Two inserts per relation, FK values copied from surviving tuples.
	for _, r := range db.Relations {
		var maxPK int64
		for _, id := range liveIDs(r) {
			if pk := r.PK(id); pk > maxPK {
				maxPK = pk
			}
		}
		for n := 0; n < 2; n++ {
			tuple := make(relational.Tuple, len(r.Columns))
			valid := true
			for ci, col := range r.Columns {
				switch {
				case ci == r.PKCol:
					tuple[ci] = relational.IntVal(maxPK + 1000*int64(round+1) + int64(n))
				case r.FKIndexOf(col.Name) >= 0:
					fk := r.FKs[r.FKIndexOf(col.Name)]
					ref := db.Relation(fk.Ref)
					src := int64(-1)
					for _, id := range liveIDs(ref) {
						pk := ref.PK(id)
						if !deleting[fk.Ref][pk] {
							src = pk
							break
						}
					}
					if src < 0 {
						valid = false
						break
					}
					tuple[ci] = relational.IntVal(src)
				case col.Kind == relational.KindString:
					tuple[ci] = relational.StrVal(fmt.Sprintf("%s zzmut%dr%dn%d", anyToken(flat, r.Name), ci, round, n))
				case col.Kind == relational.KindFloat:
					tuple[ci] = relational.FloatVal(1.5)
				default:
					tuple[ci] = relational.IntVal(7)
				}
			}
			if valid {
				batch.Inserts = append(batch.Inserts, relational.InsertOp{Rel: r.Name, Tuple: tuple})
			}
		}
	}
	if len(batch.Deletes) < 3 || len(batch.Inserts) < 6 {
		t.Fatalf("degenerate batch: %d deletes, %d inserts", len(batch.Deletes), len(batch.Inserts))
	}
	return batch
}

// TestIncrementalEqualsRebuild mutates the DBLP and TPC-H fixtures in two
// rounds and requires, after each round, that incrementally maintained
// indexes — the flat reference and the sharded layout at 1/4/17 shards —
// are bit-identical (same tokens, same exact posting lists) to from-scratch
// rebuilds over the mutated database, and that queries agree.
func TestIncrementalEqualsRebuild(t *testing.T) {
	for name, db := range equalityDBs(t) {
		t.Run(name, func(t *testing.T) {
			flat := BuildIndex(db)
			shardeds := make(map[int]*Sharded, len(equalityShardCounts))
			for _, n := range equalityShardCounts {
				shardeds[n] = BuildSharded(db, ShardedOptions{NumShards: n})
			}
			for round := 0; round < 2; round++ {
				batch := mutationBatch(t, db, flat, round)
				res, err := db.Apply(batch)
				if err != nil {
					t.Fatalf("round %d: Apply: %v", round, err)
				}
				rels := make([]string, 0, len(batch.Relations()))
				for rel := range batch.Relations() {
					rels = append(rels, rel)
				}
				sort.Strings(rels)
				for _, rel := range rels {
					flat.Apply(rel, res.Inserted[rel], res.Deleted[rel])
					for _, idx := range shardeds {
						idx.Apply(rel, res.Inserted[rel], res.Deleted[rel])
					}
				}

				want := postingsOf(t, BuildIndex(db))
				if got := postingsOf(t, flat); !reflect.DeepEqual(got, want) {
					t.Fatalf("round %d: incremental flat != rebuilt flat", round)
				}
				for _, n := range equalityShardCounts {
					rebuilt := BuildSharded(db, ShardedOptions{NumShards: n})
					if got := postingsOf(t, shardeds[n]); !reflect.DeepEqual(got, postingsOf(t, rebuilt)) {
						t.Fatalf("round %d: incremental sharded(%d) != rebuilt sharded(%d)", round, n, n)
					}
					if got := postingsOf(t, shardeds[n]); !reflect.DeepEqual(got, want) {
						t.Fatalf("round %d: incremental sharded(%d) != rebuilt flat", round, n)
					}
				}

				// Query-level agreement on a spread of the mutated corpus,
				// including the fresh tokens and a miss.
				scores := syntheticScores(db)
				pairs := corpusTokens(flat)
				for i := 0; i < len(pairs); i += 1 + len(pairs)/96 {
					rel, tok := pairs[i][0], pairs[i][1]
					want := flat.Search(rel, tok, scores)
					for _, n := range equalityShardCounts {
						if got := shardeds[n].Search(rel, tok, scores); !reflect.DeepEqual(got, want) {
							t.Fatalf("round %d: Search(%s, %q) sharded(%d) diverged", round, rel, tok, n)
						}
					}
				}
				if got := flat.Lookup(db.Relations[0].Name, []string{"zz-never-inserted"}); got != nil {
					t.Fatalf("round %d: miss returned %v", round, got)
				}
			}
		})
	}
}

// TestApplyEmptiesToken retracts the only tuples carrying a token and
// checks the posting entry disappears from every layout, exactly as a
// rebuild would have it.
func TestApplyEmptiesToken(t *testing.T) {
	db := libraryDB(t)
	flat := BuildIndex(db)
	sharded := BuildSharded(db, ShardedOptions{NumShards: 4})
	book := db.Relation("Book")
	// "classic" occurs only in Book pk 2.
	if _, err := db.Apply(relational.Batch{Deletes: []relational.DeleteOp{{Rel: "Book", PK: 2}}}); err != nil {
		t.Fatalf("Apply: %v", err)
	}
	_ = book
	flat.Apply("Book", nil, []relational.TupleID{1})
	sharded.Apply("Book", nil, []relational.TupleID{1})
	for _, idx := range []Searcher{flat, sharded} {
		if got := idx.Lookup("Book", []string{"classic"}); got != nil {
			t.Fatalf("%T: deleted token still resolves: %v", idx, got)
		}
		if got := idx.Lookup("Book", []string{"graph"}); !reflect.DeepEqual(got, []relational.TupleID{0}) {
			t.Fatalf("%T: surviving token wrong: %v", idx, got)
		}
	}
	if _, ok := flat.postings["Book"]["classic"]; ok {
		t.Fatal("flat kept an empty posting entry")
	}
}
