package keyword

import (
	"fmt"
	"reflect"
	"sort"
	"testing"

	"sizelos/internal/datagen"
	"sizelos/internal/relational"
)

// equalityShardCounts are the partition counts the flat/sharded contract is
// verified under: degenerate (1), typical (4), and a prime that misaligns
// with every power-of-two hash pattern (17).
var equalityShardCounts = []int{1, 4, 17}

func equalityDBs(t *testing.T) map[string]*relational.DB {
	t.Helper()
	dcfg := datagen.DefaultDBLPConfig()
	dcfg.Authors = 150
	dcfg.Papers = 600
	dblp, err := datagen.GenerateDBLP(dcfg)
	if err != nil {
		t.Fatalf("GenerateDBLP: %v", err)
	}
	tcfg := datagen.DefaultTPCHConfig()
	tcfg.ScaleFactor = 0.002
	tpch, err := datagen.GenerateTPCH(tcfg)
	if err != nil {
		t.Fatalf("GenerateTPCH: %v", err)
	}
	return map[string]*relational.DB{"dblp": dblp, "tpch": tpch}
}

// syntheticScores fabricates a deterministic, collision-rich score table so
// ranking equality is tested without running the rank engine: many tuples
// share a score (exercising tie-breaks), the rest spread out.
func syntheticScores(db *relational.DB) relational.DBScores {
	scores := make(relational.DBScores, len(db.Relations))
	for _, rel := range db.Relations {
		s := make(relational.Scores, rel.Len())
		for i := range s {
			s[i] = float64((uint32(i) * 2654435761) % 97)
		}
		scores[rel.Name] = s
	}
	return scores
}

// corpusTokens returns every (relation, token) pair of the flat index,
// sorted for reproducible iteration.
func corpusTokens(idx *Index) [][2]string {
	var out [][2]string
	for rel, tokens := range idx.postings {
		for tok := range tokens {
			out = append(out, [2]string{rel, tok})
		}
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a][0] != out[b][0] {
			return out[a][0] < out[b][0]
		}
		return out[a][1] < out[b][1]
	})
	return out
}

// TestShardedEqualsFlat drives every query the corpus can express — every
// single-token lookup, AND pairs, ranked Search and SearchAll — through the
// flat and sharded indexes at shard counts {1, 4, 17} on the DBLP and TPC-H
// fixtures, requiring identical results throughout.
func TestShardedEqualsFlat(t *testing.T) {
	for name, db := range equalityDBs(t) {
		t.Run(name, func(t *testing.T) {
			flat := BuildIndex(db)
			scores := syntheticScores(db)
			pairs := corpusTokens(flat)
			if len(pairs) == 0 {
				t.Fatal("fixture produced an empty corpus")
			}
			for _, numShards := range equalityShardCounts {
				t.Run(fmt.Sprintf("shards=%d", numShards), func(t *testing.T) {
					sharded := BuildSharded(db, ShardedOptions{NumShards: numShards})
					if got := sharded.NumShards(); got != numShards {
						t.Fatalf("NumShards = %d, want %d", got, numShards)
					}
					for _, p := range pairs {
						rel, tok := p[0], p[1]
						want := flat.Lookup(rel, []string{tok})
						got := sharded.Lookup(rel, []string{tok})
						if !reflect.DeepEqual(got, want) {
							t.Fatalf("Lookup(%s, %q): sharded %v != flat %v", rel, tok, got, want)
						}
						wantM := flat.Search(rel, tok, scores)
						gotM := sharded.Search(rel, tok, scores)
						if !reflect.DeepEqual(gotM, wantM) {
							t.Fatalf("Search(%s, %q): sharded %+v != flat %+v", rel, tok, gotM, wantM)
						}
					}
					// AND pairs: adjacent corpus tokens of the same relation
					// (mixes shared-tuple hits and guaranteed misses).
					for i := 1; i < len(pairs); i++ {
						if pairs[i][0] != pairs[i-1][0] {
							continue
						}
						rel := pairs[i][0]
						kws := []string{pairs[i-1][1], pairs[i][1]}
						want := flat.Lookup(rel, kws)
						got := sharded.Lookup(rel, kws)
						if !reflect.DeepEqual(got, want) {
							t.Fatalf("Lookup(%s, %v): sharded %v != flat %v", rel, kws, got, want)
						}
					}
					// Cross-relation SearchAll on a spread of tokens.
					for i := 0; i < len(pairs); i += 1 + len(pairs)/64 {
						tok := pairs[i][1]
						want := flat.SearchAll(tok, scores)
						got := sharded.SearchAll(tok, scores)
						if !reflect.DeepEqual(got, want) {
							t.Fatalf("SearchAll(%q): sharded %+v != flat %+v", tok, got, want)
						}
					}
					// Misses and edge cases behave identically too.
					if got := sharded.Lookup("NoSuchRelation", []string{"x"}); got != nil {
						t.Errorf("unknown relation: got %v, want nil", got)
					}
					if got := sharded.Lookup(db.Relations[0].Name, nil); got != nil {
						t.Errorf("empty keywords: got %v, want nil", got)
					}
					if got := sharded.SearchAll("zzz-no-such-token-zzz", scores); got != nil {
						t.Errorf("miss SearchAll: got %v, want nil", got)
					}
				})
			}
		})
	}
}

// TestShardedDefaultOptions covers the zero-value construction path the
// engine uses.
func TestShardedDefaultOptions(t *testing.T) {
	db := libraryDB(t)
	idx := BuildSharded(db, ShardedOptions{})
	if idx.NumShards() < 1 {
		t.Fatalf("NumShards = %d", idx.NumShards())
	}
	want := []relational.TupleID{0, 1}
	if got := idx.Lookup("Author", []string{"faloutsos"}); !reflect.DeepEqual(got, want) {
		t.Fatalf("Lookup = %v, want %v", got, want)
	}
}
