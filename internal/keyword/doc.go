// Package keyword implements the query front-end of the OS paradigm: an
// inverted index over string attributes that maps a keyword query to the
// data-subject tuples t_DS containing the keyword(s) as part of an
// attribute's value (paper §2.1). One size-l OS is then produced per
// matching DS tuple, as in Example 5.
//
// Two implementations share the Searcher contract: Index is the flat
// reference index built serially, Sharded hash-partitions tokens across
// independent posting maps built and probed in parallel. Both return
// identical results for every query; the engine uses Sharded. Both also
// implement Maintainer (incremental posting deltas for mutation batches)
// and Compactor (TupleID remaps after physical compaction).
//
// # Invariants
//
//   - Posting lists are ascending and deduplicated across columns: a token
//     appearing in two string columns of one tuple posts that tuple once.
//     Search results are ranked by the caller-supplied global importance,
//     ties broken by TupleID.
//   - Posting lists hold LIVE tuples only. Maintainer.Apply retracts a
//     deleted tuple's postings by re-tokenizing its retained slot content;
//     it therefore requires the relational layer's tombstone contract
//     (content kept until compaction) and per-relation id lists in
//     ascending order — the relational.BatchResult contract.
//   - Incremental maintenance is exact: after any sequence of Apply calls
//     the index is bit-identical to a from-scratch rebuild over the
//     mutated store — same tokens, same posting lists — at every shard
//     count (delta_test.go enforces this on DBLP and TPC-H at 1/4/17
//     shards).
//   - Sharded.Apply partitions the token delta with the same FNV hash that
//     placed tokens at build time; a token's shard assignment never
//     changes across maintenance.
//   - Compactor.Remap is sound only because postings are live-only: a
//     monotonic TupleID remap (relational.Relation.Compact's return)
//     rewrites every posting without re-tokenization. Remapping with a
//     non-compaction (non-monotonic) map would corrupt posting order.
package keyword
