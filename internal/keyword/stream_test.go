package keyword

import (
	"reflect"
	"sort"
	"testing"

	"sizelos/internal/relational"
)

// refSearch is the pre-stream reference ranking: Lookup's candidate ids
// scored and sorted with sort.SliceStable under matchLess. Search and
// SearchStream both must reproduce it exactly — Search now drains the
// stream, so this independent path is what keeps the heap honest.
func refSearch(idx *Index, dsRel, query string, scores relational.DBScores) []Match {
	ids := idx.Lookup(dsRel, Tokenize(query))
	if len(ids) == 0 {
		return nil
	}
	s := scores[dsRel]
	out := make([]Match, 0, len(ids))
	for _, id := range ids {
		m := Match{Relation: dsRel, Tuple: id}
		if int(id) < len(s) {
			m.Score = s[id]
		}
		out = append(out, m)
	}
	sort.SliceStable(out, func(a, b int) bool { return matchLess(out[a], out[b]) })
	return out
}

// refSearchAll concatenates every relation's reference ranking and re-sorts
// globally, the shape (*Index).SearchAll had before the streaming rewrite.
func refSearchAll(idx *Index, query string, scores relational.DBScores) []Match {
	var out []Match
	for _, rel := range idx.db.Relations {
		out = append(out, refSearch(idx, rel.Name, query, scores)...)
	}
	sort.SliceStable(out, func(a, b int) bool { return matchLess(out[a], out[b]) })
	return out
}

// streamPrefix pulls up to n matches off a stream.
func streamPrefix(s MatchStream, n int) []Match {
	var out []Match
	for len(out) < n {
		m, ok := s.Next()
		if !ok {
			break
		}
		out = append(out, m)
	}
	return out
}

// TestStreamMatchesReference proves, for every expressible single-token and
// AND-pair query over DBLP and TPC-H at shard counts {1, 4, 17}, that the
// streaming surface emits exactly the reference ranking — fully drained,
// and prefix-by-prefix (every limit n yields the first n of the drain).
func TestStreamMatchesReference(t *testing.T) {
	for name, db := range equalityDBs(t) {
		t.Run(name, func(t *testing.T) {
			flat := BuildIndex(db)
			scores := syntheticScores(db)
			pairs := corpusTokens(flat)
			if len(pairs) == 0 {
				t.Fatal("fixture produced an empty corpus")
			}
			var indexes []Searcher
			indexes = append(indexes, flat)
			for _, n := range equalityShardCounts {
				indexes = append(indexes, BuildSharded(db, ShardedOptions{NumShards: n}))
			}
			labels := []string{"flat", "sharded1", "sharded4", "sharded17"}

			queries := make(map[string][]string) // rel -> queries
			for i, p := range pairs {
				if i%7 == 0 { // thin out: the full cross product is slow
					queries[p[0]] = append(queries[p[0]], p[1])
				}
			}
			// AND pairs within a relation, plus a miss and an empty query.
			for rel, qs := range queries {
				if len(qs) >= 2 {
					queries[rel] = append(qs, qs[0]+" "+qs[1])
				}
				queries[rel] = append(queries[rel], "zzz-no-such-token", "")
			}

			for rel, qs := range queries {
				for _, q := range qs {
					want := refSearch(flat, rel, q, scores)
					for li, idx := range indexes {
						got := drainStream(idx.SearchStream(rel, q, scores))
						if !reflect.DeepEqual(got, want) {
							t.Fatalf("%s SearchStream(%q, %q) diverged from reference", labels[li], rel, q)
						}
						// Prefix law: limit n == first n of the drain.
						for _, n := range []int{1, 2, 5, len(want)} {
							if n == 0 || n > len(want) {
								continue
							}
							prefix := streamPrefix(idx.SearchStream(rel, q, scores), n)
							if !reflect.DeepEqual(prefix, want[:n]) {
								t.Fatalf("%s SearchStream(%q, %q) limit %d != drain prefix", labels[li], rel, q, n)
							}
						}
					}
				}
			}

			// Global (SearchAll) surface on a sample of queries.
			sampled := 0
			for _, qs := range queries {
				for _, q := range qs {
					if sampled++; sampled%5 != 0 {
						continue
					}
					want := refSearchAll(flat, q, scores)
					for li, idx := range indexes {
						got := drainStream(idx.SearchAllStream(q, scores))
						if len(got) == 0 && len(want) == 0 {
							continue
						}
						if !reflect.DeepEqual(got, want) {
							t.Fatalf("%s SearchAllStream(%q) diverged from reference", labels[li], q)
						}
						if n := 3; len(want) >= n {
							prefix := streamPrefix(idx.SearchAllStream(q, scores), n)
							if !reflect.DeepEqual(prefix, want[:n]) {
								t.Fatalf("%s SearchAllStream(%q) limit %d != drain prefix", labels[li], q, n)
							}
						}
					}
				}
			}
		})
	}
}

// TestStreamRemaining pins the Remaining contract: it starts at the match
// count and decrements by exactly one per pop, on both single-relation and
// merged streams.
func TestStreamRemaining(t *testing.T) {
	for _, db := range equalityDBs(t) {
		idx := BuildIndex(db)
		scores := syntheticScores(db)
		pairs := corpusTokens(idx)
		for i, p := range pairs {
			if i%37 != 0 {
				continue
			}
			for _, open := range []func() MatchStream{
				func() MatchStream { return idx.SearchStream(p[0], p[1], scores) },
				func() MatchStream { return idx.SearchAllStream(p[1], scores) },
			} {
				s := open()
				n := s.Remaining()
				for k := 0; k < n; k++ {
					if _, ok := s.Next(); !ok {
						t.Fatalf("stream dried up at %d of %d", k, n)
					}
					if got := s.Remaining(); got != n-k-1 {
						t.Fatalf("Remaining after %d pops = %d, want %d", k+1, got, n-k-1)
					}
				}
				if _, ok := s.Next(); ok {
					t.Fatal("stream yielded past Remaining()==0")
				}
			}
		}
	}
}

// TestIntersectionCursor checks the lazy galloping intersection against the
// materialized intersect() on adversarial list shapes: disjoint, nested,
// skewed lengths, shared prefixes/suffixes, singletons.
func TestIntersectionCursor(t *testing.T) {
	mk := func(ids ...int) []relational.TupleID {
		out := make([]relational.TupleID, len(ids))
		for i, v := range ids {
			out[i] = relational.TupleID(v)
		}
		return out
	}
	long := make([]relational.TupleID, 5000)
	for i := range long {
		long[i] = relational.TupleID(i * 3)
	}
	cases := [][2][]relational.TupleID{
		{mk(1, 2, 3), mk(4, 5, 6)},
		{mk(1, 2, 3, 4, 5), mk(2, 4)},
		{mk(0), mk(0)},
		{mk(0), mk(1)},
		{mk(1, 5, 9, 13), mk(1, 13)},
		{long, mk(0, 3, 2999*3, 4999*3, 5001*3)},
		{mk(7), long},
	}
	for ci, c := range cases {
		want := intersect(c[0], c[1])
		it := newIntersection([][]relational.TupleID{c[0], c[1]})
		var got []relational.TupleID
		for {
			id, ok := it.next()
			if !ok {
				break
			}
			got = append(got, id)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("case %d: lazy intersection %v, want %v", ci, got, want)
		}
		// Three-way: intersect with itself must be idempotent.
		it3 := newIntersection([][]relational.TupleID{c[0], c[1], c[1]})
		got = got[:0]
		for {
			id, ok := it3.next()
			if !ok {
				break
			}
			got = append(got, id)
		}
		if len(got) == 0 {
			got = nil
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("case %d: three-way lazy intersection %v, want %v", ci, got, want)
		}
	}
}

// TestGallop pins the galloping search boundary conditions.
func TestGallop(t *testing.T) {
	list := []relational.TupleID{2, 4, 4, 8, 16, 32}
	cases := []struct {
		from   int
		target relational.TupleID
		want   int
	}{
		{0, 0, 0}, {0, 2, 0}, {0, 3, 1}, {0, 4, 1}, {0, 5, 3},
		{0, 32, 5}, {0, 33, 6}, {3, 8, 3}, {4, 8, 4}, {6, 1, 6},
	}
	for _, c := range cases {
		if got := gallop(list, c.from, c.target); got != c.want {
			t.Errorf("gallop(from=%d, target=%d) = %d, want %d", c.from, c.target, got, c.want)
		}
	}
	if got := gallop(nil, 0, 5); got != 0 {
		t.Errorf("gallop(nil) = %d, want 0", got)
	}
}
