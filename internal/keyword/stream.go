package keyword

import (
	"strings"

	"sizelos/internal/relational"
	"sizelos/internal/searchexec"
)

// This file is the streaming query side of the index: instead of
// materializing and sorting the full match set (Search/SearchAll), a
// MatchStream produces each next-best match on demand. The composition is
//
//	posting lists -> lazy k-way intersection -> best-first frontier -> pop
//
// The intersection never materializes intermediate per-keyword results (the
// old Lookup allocated one accumulator slice per keyword step); candidates
// flow one id at a time into a binary-heap frontier built in O(n), and each
// pop costs O(log n). A caller consuming k of n matches therefore pays
// O(n + k log n) instead of the O(n log n) full sort — and, one layer up,
// the engine computes summaries only for the k matches actually pulled.

// MatchStream is a pull cursor over keyword matches in best-first order
// (score desc, relation asc, tuple asc — the same total order Search and
// SearchAll return). Next yields the next-best match until exhausted.
// Streams are single-consumer and must not be advanced concurrently with
// index mutation; the engine pins one consistent state via its read lock
// and epoch checks.
type MatchStream interface {
	// Next pops the next-best match; ok is false when the stream is dry.
	Next() (m Match, ok bool)
	// Remaining reports how many matches the stream still holds.
	Remaining() int
}

// intersection walks k ascending posting lists in lockstep and emits the
// ids common to all of them, ascending, one at a time. Lists are probed by
// galloping (exponential then binary search), so skewed keyword
// selectivities cost O(short · log long) rather than a full linear merge.
type intersection struct {
	lists [][]relational.TupleID
	pos   []int
}

func newIntersection(lists [][]relational.TupleID) *intersection {
	return &intersection{lists: lists, pos: make([]int, len(lists))}
}

// next returns the next common id, ascending; ok=false when any list is
// exhausted (no further common id can exist).
func (it *intersection) next() (relational.TupleID, bool) {
	if len(it.lists) == 0 {
		return 0, false
	}
	if it.pos[0] >= len(it.lists[0]) {
		return 0, false
	}
	cand := it.lists[0][it.pos[0]]
	for i := 1; i < len(it.lists); {
		p := gallop(it.lists[i], it.pos[i], cand)
		it.pos[i] = p
		if p >= len(it.lists[i]) {
			return 0, false
		}
		if v := it.lists[i][p]; v != cand {
			// Restart the round with the larger candidate; list 0 must
			// catch up too.
			cand = v
			it.pos[0] = gallop(it.lists[0], it.pos[0], cand)
			if it.pos[0] >= len(it.lists[0]) {
				return 0, false
			}
			if it.lists[0][it.pos[0]] != cand {
				cand = it.lists[0][it.pos[0]]
			}
			i = 1
			continue
		}
		i++
	}
	// Every list agrees on cand; advance past it for the next call.
	it.pos[0]++
	return cand, true
}

// gallop returns the smallest index >= from whose value is >= target,
// probing exponentially and finishing with a binary search over the
// bracketed range.
func gallop(list []relational.TupleID, from int, target relational.TupleID) int {
	if from >= len(list) || list[from] >= target {
		return from
	}
	step := 1
	lo := from
	hi := from + step
	for hi < len(list) && list[hi] < target {
		lo = hi
		step <<= 1
		hi = from + step
	}
	if hi > len(list) {
		hi = len(list)
	}
	// Binary search (lo, hi]: list[lo] < target <= list[hi] (if in range).
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if list[mid] < target {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// frontierStream is the per-relation best-first frontier: the candidate
// (tuple, score) pairs arranged as a binary heap ordered by matchLess.
// Building it is O(n); each Next pops the root in O(log n).
type frontierStream struct {
	heap []Match
}

var _ MatchStream = (*frontierStream)(nil)

// newFrontier streams the lazy intersection of lists into a heap of
// matches for one relation. Scores beyond the vector's length read as 0,
// exactly like rankMatches.
func newFrontier(dsRel string, lists [][]relational.TupleID, scores relational.DBScores) *frontierStream {
	s := scores[dsRel]
	f := &frontierStream{}
	it := newIntersection(lists)
	for {
		id, ok := it.next()
		if !ok {
			break
		}
		m := Match{Relation: dsRel, Tuple: id}
		if int(id) < len(s) {
			m.Score = s[id]
		}
		f.heap = append(f.heap, m)
	}
	// Heapify bottom-up: O(n).
	for i := len(f.heap)/2 - 1; i >= 0; i-- {
		f.siftDown(i)
	}
	return f
}

func (f *frontierStream) Remaining() int { return len(f.heap) }

func (f *frontierStream) Next() (Match, bool) {
	n := len(f.heap)
	if n == 0 {
		return Match{}, false
	}
	top := f.heap[0]
	f.heap[0] = f.heap[n-1]
	f.heap = f.heap[:n-1]
	if len(f.heap) > 0 {
		f.siftDown(0)
	}
	return top, true
}

func (f *frontierStream) siftDown(i int) {
	h := f.heap
	n := len(h)
	for {
		l := 2*i + 1
		if l >= n {
			return
		}
		best := l
		if r := l + 1; r < n && matchLess(h[r], h[l]) {
			best = r
		}
		if !matchLess(h[best], h[i]) {
			return
		}
		h[i], h[best] = h[best], h[i]
		i = best
	}
}

// emptyStream is the stream of an unknown relation or unmatched keyword.
type emptyStream struct{}

var _ MatchStream = emptyStream{}

func (emptyStream) Next() (Match, bool) { return Match{}, false }
func (emptyStream) Remaining() int      { return 0 }

// mergeStream lazily k-way merges per-relation streams into the global
// best-first order. Relations are few, so a linear scan per pop beats a
// heap — the same economics the materialized SearchAll merge used.
type mergeStream struct {
	streams []MatchStream
	// heads holds each stream's next match; ok marks live entries.
	heads []Match
	ok    []bool
}

var _ MatchStream = (*mergeStream)(nil)

func newMergeStream(streams []MatchStream) *mergeStream {
	ms := &mergeStream{
		streams: streams,
		heads:   make([]Match, len(streams)),
		ok:      make([]bool, len(streams)),
	}
	for i, s := range streams {
		ms.heads[i], ms.ok[i] = s.Next()
	}
	return ms
}

func (ms *mergeStream) Remaining() int {
	total := 0
	for i, s := range ms.streams {
		total += s.Remaining()
		if ms.ok[i] {
			total++
		}
	}
	return total
}

func (ms *mergeStream) Next() (Match, bool) {
	best := -1
	for i := range ms.heads {
		if !ms.ok[i] {
			continue
		}
		if best < 0 || matchLess(ms.heads[i], ms.heads[best]) {
			best = i
		}
	}
	if best < 0 {
		return Match{}, false
	}
	m := ms.heads[best]
	ms.heads[best], ms.ok[best] = ms.streams[best].Next()
	return m, true
}

// drainStream materializes a stream — the shared body of the non-streaming
// Search/SearchAll entry points, which guarantees the two surfaces can
// never order matches differently.
func drainStream(s MatchStream) []Match {
	n := s.Remaining()
	if n == 0 {
		return nil
	}
	out := make([]Match, 0, n)
	for {
		m, ok := s.Next()
		if !ok {
			return out
		}
		out = append(out, m)
	}
}

// keywordLists resolves one relation's posting list per keyword from the
// flat layout; ok=false when the relation is unknown, the query is empty,
// or any keyword has no postings (AND semantics: the result is empty).
func (idx *Index) keywordLists(rel string, keywords []string) ([][]relational.TupleID, bool) {
	tokens := idx.postings[rel]
	if tokens == nil || len(keywords) == 0 {
		return nil, false
	}
	lists := make([][]relational.TupleID, len(keywords))
	for i, kw := range keywords {
		list := tokens[strings.ToLower(kw)]
		if len(list) == 0 {
			return nil, false
		}
		lists[i] = list
	}
	return lists, true
}

// SearchStream returns a pull cursor over exactly Search's matches and
// order, produced on demand: O(n) frontier build, O(log n) per pop.
func (idx *Index) SearchStream(dsRel, query string, scores relational.DBScores) MatchStream {
	lists, ok := idx.keywordLists(dsRel, Tokenize(query))
	if !ok {
		return emptyStream{}
	}
	return newFrontier(dsRel, lists, scores)
}

// SearchAllStream returns a pull cursor over exactly SearchAll's matches
// and order, lazily merging one frontier per relation.
func (idx *Index) SearchAllStream(query string, scores relational.DBScores) MatchStream {
	streams := make([]MatchStream, len(idx.db.Relations))
	for i, rel := range idx.db.Relations {
		streams[i] = idx.SearchStream(rel.Name, query, scores)
	}
	return newMergeStream(streams)
}

// keywordLists resolves one relation's posting list per keyword, each from
// the one shard it hashes to; ok=false mirrors the flat layout.
func (idx *Sharded) keywordLists(rel string, keywords []string) ([][]relational.TupleID, bool) {
	if !idx.known[rel] || len(keywords) == 0 {
		return nil, false
	}
	lists := make([][]relational.TupleID, len(keywords))
	for i, kw := range keywords {
		list := idx.postings(rel, strings.ToLower(kw))
		if len(list) == 0 {
			return nil, false
		}
		lists[i] = list
	}
	return lists, true
}

// SearchStream returns a pull cursor over exactly Search's matches and
// order; each keyword's posting list comes from the one shard it hashes to.
func (idx *Sharded) SearchStream(dsRel, query string, scores relational.DBScores) MatchStream {
	lists, ok := idx.keywordLists(dsRel, Tokenize(query))
	if !ok {
		return emptyStream{}
	}
	return newFrontier(dsRel, lists, scores)
}

// SearchAllStream returns a pull cursor over exactly SearchAll's matches
// and order. The per-relation frontiers are built across a worker pool
// (heapify is the only O(n) cost); the merge itself is lazy.
func (idx *Sharded) SearchAllStream(query string, scores relational.DBScores) MatchStream {
	rels := idx.db.Relations
	streams := make([]MatchStream, len(rels))
	_ = searchexec.ForEach(len(rels), 0, func(i int) error {
		streams[i] = idx.SearchStream(rels[i].Name, query, scores)
		return nil
	})
	return newMergeStream(streams)
}
