package loadgen

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"sizelos"
	"sizelos/internal/datagen"
	"sizelos/internal/nodehost"
	"sizelos/internal/router"
	"sizelos/internal/tenancy"
)

func smallOpen(dataset string, seed int64) (*sizelos.Engine, error) {
	if dataset != "dblp" {
		return nil, fmt.Errorf("test fleet serves dblp only, got %q", dataset)
	}
	cfg := datagen.DefaultDBLPConfig()
	cfg.Seed = seed
	cfg.Authors = 40
	cfg.Papers = 160
	cfg.Conferences = 4
	cfg.YearSpan = 3
	return sizelos.OpenDBLP(cfg)
}

// TestClosedLoopAgainstRoutedFleet runs the full harness against a real
// two-node routed fleet: zero errors, zero missing tokens, per-node
// throughput attributed via the router's node header, and all op classes
// exercised.
func TestClosedLoopAgainstRoutedFleet(t *testing.T) {
	dir := t.TempDir()
	var members []router.Member
	for _, name := range []string{"n1", "n2"} {
		node, err := nodehost.Boot(tenancy.ServerConfig{
			Seed: 830, CacheBudget: 64, DataDir: dir, KeepSnapshots: 2, ResidualWorkers: 1,
		}, nil, nodehost.Config{Open: smallOpen, Logf: t.Logf})
		if err != nil {
			t.Fatalf("boot %s: %v", name, err)
		}
		t.Cleanup(node.Close)
		srv := httptest.NewServer(node.Handler())
		t.Cleanup(srv.Close)
		members = append(members, router.Member{Name: name, URL: srv.URL})
	}
	rt, err := router.New(router.Config{Members: members, HealthInterval: -1, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rt.Close)
	front := httptest.NewServer(rt)
	t.Cleanup(front.Close)

	for _, tenant := range []string{"tenant-a", "tenant-b"} {
		resp, err := http.Post(front.URL+"/v1/tenants", "application/json",
			strings.NewReader(fmt.Sprintf(`{"name":%q,"dataset":"dblp"}`, tenant)))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusCreated {
			t.Fatalf("register %s: %d", tenant, resp.StatusCode)
		}
	}

	res, err := Run(Config{
		BaseURL:     front.URL,
		Tenants:     []string{"tenant-a", "tenant-b"},
		Concurrency: 4,
		Ops:         120,
		Seed:        7,
		Logf:        t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Errors != 0 {
		t.Fatalf("errors = %d, want 0", res.Errors)
	}
	if len(res.Missing) != 0 {
		t.Fatalf("missing tokens: %v", res.Missing)
	}
	if res.Acked == 0 || res.Verified != res.Acked {
		t.Fatalf("consistency ledger acked=%d verified=%d", res.Acked, res.Verified)
	}
	for _, class := range []string{OpSearch, OpRanked, OpMutate, OpVerify} {
		cs := res.Classes[class]
		if cs == nil || cs.Count == 0 {
			t.Fatalf("op class %s never ran: %+v", class, res.Classes)
		}
		if cs.P50 <= 0 || cs.P99 < cs.P50 {
			t.Fatalf("class %s has nonsense percentiles p50=%s p99=%s", class, cs.P50, cs.P99)
		}
	}
	var routed int64
	for node, n := range res.PerNode {
		if node == "" {
			t.Fatal("routed run produced responses without a node header")
		}
		routed += n
	}
	if routed != res.Ops {
		t.Fatalf("per-node attribution covers %d of %d ops", routed, res.Ops)
	}
	if len(res.PerNode) != 2 {
		t.Fatalf("expected both nodes to serve traffic: %v", res.PerNode)
	}
	if got := len(res.BenchResults()); got < 6 {
		t.Fatalf("bench rendering has %d entries, want >= 6 (4 classes + nodes + ledger)", got)
	}
}

// TestOracleDetectsLostWrites pins that the consistency check actually
// fails when a service acks mutations and then drops them: a lying server
// must produce Missing tokens, not a green run.
func TestOracleDetectsLostWrites(t *testing.T) {
	var mu sync.Mutex
	acks := 0
	liar := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		if req.Method == http.MethodPost {
			mu.Lock()
			acks++
			mu.Unlock()
			w.Write([]byte(`{"inserted":[1]}`)) // acked... and forgotten
			return
		}
		w.Write([]byte(`{"count":0,"results":[]}`)) // reads never see it
	}))
	defer liar.Close()

	res, err := Run(Config{
		BaseURL:     liar.URL,
		Tenants:     []string{"t"},
		Concurrency: 2,
		Ops:         40,
		Seed:        7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Acked == 0 {
		t.Fatal("workload never acked a mutation; oracle untested")
	}
	if int64(len(res.Missing)) != res.Acked || res.Verified != 0 {
		t.Fatalf("oracle missed lost writes: acked=%d verified=%d missing=%d",
			res.Acked, res.Verified, len(res.Missing))
	}
}

func TestPercentile(t *testing.T) {
	ds := make([]time.Duration, 100)
	for i := range ds {
		ds[i] = time.Duration(i+1) * time.Millisecond
	}
	if got := percentile(ds, 50); got != 50*time.Millisecond {
		t.Fatalf("p50 = %s", got)
	}
	if got := percentile(ds, 99); got != 99*time.Millisecond {
		t.Fatalf("p99 = %s", got)
	}
	if got := percentile(ds[:1], 99); got != time.Millisecond {
		t.Fatalf("p99 of singleton = %s", got)
	}
	if got := percentile(nil, 50); got != 0 {
		t.Fatalf("p50 of empty = %s", got)
	}
}
