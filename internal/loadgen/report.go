package loadgen

import (
	"sort"

	"sizelos/internal/benchfmt"
)

// BenchResults renders a run in the benchfmt schema: one entry per op
// class carrying p50/p99 milliseconds, one entry per fleet node carrying
// its observed throughput, and a ledger entry for the consistency oracle.
// The entries slot into a Report next to `go test -bench` results, so one
// committed BENCH_<n>.json can hold both micro and macro numbers.
func (r *Result) BenchResults() []benchfmt.Result {
	var out []benchfmt.Result
	classes := make([]string, 0, len(r.Classes))
	for class := range r.Classes {
		classes = append(classes, class)
	}
	sort.Strings(classes)
	for _, class := range classes {
		cs := r.Classes[class]
		out = append(out, benchfmt.Result{
			Name:       "Osload/" + class,
			Iterations: cs.Count,
			Metrics: map[string]float64{
				"p50-ms": float64(cs.P50.Microseconds()) / 1000,
				"p99-ms": float64(cs.P99.Microseconds()) / 1000,
			},
		})
	}
	nodes := make([]string, 0, len(r.PerNode))
	for node := range r.PerNode {
		nodes = append(nodes, node)
	}
	sort.Strings(nodes)
	for _, node := range nodes {
		ops := r.PerNode[node]
		tput := 0.0
		if r.Elapsed > 0 {
			tput = float64(ops) / r.Elapsed.Seconds()
		}
		out = append(out, benchfmt.Result{
			Name:       "Osload/node/" + node,
			Iterations: ops,
			Metrics:    map[string]float64{"ops-per-sec": tput},
		})
	}
	out = append(out, benchfmt.Result{
		Name:       "Osload/consistency",
		Iterations: r.Ops,
		Metrics: map[string]float64{
			"acked":    float64(r.Acked),
			"verified": float64(r.Verified),
			"missing":  float64(len(r.Missing)),
			"errors":   float64(r.Errors),
		},
	})
	return out
}
