// Package loadgen is a closed-loop load generator and consistency checker
// for the routed (or single-node) service API: a fixed number of workers
// each keep exactly one request in flight, drawing operations — keyword
// search, ranked top-k, and tuple mutations — from a deterministic
// template mix. Every acked mutation inserts a unique token and the
// harness later re-reads it through the same base URL, so a run doubles as
// an end-to-end consistency oracle: with a router in front, an acked write
// must be visible to every later routed read, across failovers and
// migrations. Results report per-class p50/p99 latency and per-node
// throughput (from the X-Sizelos-Node response header) in a shape that
// drops into the benchfmt schema.
package loadgen

import (
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"
)

// Op classes reported in Result.Classes.
const (
	OpSearch = "search"
	OpRanked = "ranked"
	OpMutate = "mutate"
	OpVerify = "verify"
)

// Config parameterizes one run.
type Config struct {
	// BaseURL fronts the service — a router or a single node.
	BaseURL string
	// Tenants are the registered tenants the workload spreads over.
	Tenants []string
	// Concurrency is the worker count; each worker keeps one request in
	// flight (closed loop). Default 4.
	Concurrency int
	// Ops is the total operation budget across workers. Default 200.
	Ops int
	// MutatePermille of operations are mutation batches (default 200,
	// i.e. 20%); half of the remainder are ranked queries.
	MutatePermille int
	// Seed makes the op template sequence deterministic.
	Seed int64
	// Queries are the search keywords the read template cycles through.
	// Default: the paper's running example ("Faloutsos").
	Queries []string
	// Client issues the requests; nil means a 30s-timeout client.
	Client *http.Client
	// Logf receives progress lines; nil = silent.
	Logf func(format string, args ...any)
}

func (c *Config) fill() error {
	if c.BaseURL == "" || len(c.Tenants) == 0 {
		return fmt.Errorf("loadgen: BaseURL and at least one tenant required")
	}
	if c.Concurrency <= 0 {
		c.Concurrency = 4
	}
	if c.Ops <= 0 {
		c.Ops = 200
	}
	if c.MutatePermille == 0 {
		c.MutatePermille = 200
	}
	if len(c.Queries) == 0 {
		c.Queries = []string{"Faloutsos", "Agrawal", "Mamoulis"}
	}
	if c.Client == nil {
		c.Client = &http.Client{Timeout: 30 * time.Second}
	}
	return nil
}

// ClassStats summarizes one op class's latency distribution.
type ClassStats struct {
	Count int64         `json:"count"`
	P50   time.Duration `json:"p50"`
	P99   time.Duration `json:"p99"`
}

// Result is one completed run.
type Result struct {
	Ops     int64                  `json:"ops"`
	Errors  int64                  `json:"errors"`
	Elapsed time.Duration          `json:"elapsed"`
	Classes map[string]*ClassStats `json:"classes"`
	// PerNode counts responses by X-Sizelos-Node header; single-node runs
	// put everything under "" unless the server names itself.
	PerNode map[string]int64 `json:"per_node"`
	// Acked/Verified/Missing is the consistency ledger: unique tokens
	// whose insert was acknowledged, how many a later read found, and the
	// tokens lost. Missing > 0 is a correctness failure, not a perf number.
	Acked    int64    `json:"acked"`
	Verified int64    `json:"verified"`
	Missing  []string `json:"missing,omitempty"`
}

// Throughput is overall ops/sec.
func (r *Result) Throughput() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.Ops) / r.Elapsed.Seconds()
}

type sample struct {
	class string
	d     time.Duration
	node  string
	err   bool
}

type ackedToken struct {
	tenant, token string
}

// Run drives the configured workload to completion and then sweeps every
// acked token with a verification read.
func Run(cfg Config) (*Result, error) {
	if err := cfg.fill(); err != nil {
		return nil, err
	}
	logf := cfg.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}

	var (
		mu      sync.Mutex
		samples []sample
		acked   []ackedToken
		opNext  int
	)
	takeOp := func() (int, bool) {
		mu.Lock()
		defer mu.Unlock()
		if opNext >= cfg.Ops {
			return 0, false
		}
		opNext++
		return opNext - 1, true
	}

	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < cfg.Concurrency; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(cfg.Seed + int64(worker)*7919))
			for {
				op, ok := takeOp()
				if !ok {
					return
				}
				tenant := cfg.Tenants[op%len(cfg.Tenants)]
				s := runOp(cfg, rng, worker, op, tenant, &mu, &acked)
				mu.Lock()
				samples = append(samples, s)
				mu.Unlock()
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)
	logf("loadgen: %d ops in %s; verifying %d acked mutations", cfg.Ops, elapsed.Round(time.Millisecond), len(acked))

	// Consistency sweep: every acked token must be visible now.
	res := &Result{
		Elapsed: elapsed,
		Classes: make(map[string]*ClassStats),
		PerNode: make(map[string]int64),
		Acked:   int64(len(acked)),
	}
	for _, a := range acked {
		s, found := verifyToken(cfg, a)
		samples = append(samples, s)
		if found {
			res.Verified++
		} else {
			res.Missing = append(res.Missing, a.tenant+"/"+a.token)
		}
	}

	byClass := make(map[string][]time.Duration)
	for _, s := range samples {
		res.Ops++
		if s.err {
			res.Errors++
		}
		if s.node != "" {
			res.PerNode[s.node]++
		}
		byClass[s.class] = append(byClass[s.class], s.d)
	}
	for class, ds := range byClass {
		sort.Slice(ds, func(i, j int) bool { return ds[i] < ds[j] })
		res.Classes[class] = &ClassStats{
			Count: int64(len(ds)),
			P50:   percentile(ds, 50),
			P99:   percentile(ds, 99),
		}
	}
	return res, nil
}

// runOp executes one templated operation; mutations append their token to
// acked only when the service acknowledged the batch.
func runOp(cfg Config, rng *rand.Rand, worker, op int, tenant string, mu *sync.Mutex, acked *[]ackedToken) sample {
	if rng.Intn(1000) < cfg.MutatePermille {
		token := fmt.Sprintf("osload%dx%d", worker, op)
		id := 500000 + worker*100000 + op
		body := fmt.Sprintf(`{"inserts":[{"rel":"Author","values":[%d,%q]}]}`, id, token)
		s, status, _ := request(cfg, http.MethodPost, "/v1/"+tenant+"/tuples", body, OpMutate)
		if status == http.StatusOK {
			mu.Lock()
			*acked = append(*acked, ackedToken{tenant: tenant, token: token})
			mu.Unlock()
		}
		return s
	}
	q := cfg.Queries[rng.Intn(len(cfg.Queries))]
	if rng.Intn(2) == 0 {
		s, _, _ := request(cfg, http.MethodGet, "/v1/"+tenant+"/ranked?rel=Author&q="+q+"&l=10&k=3", "", OpRanked)
		return s
	}
	s, _, _ := request(cfg, http.MethodGet, "/v1/"+tenant+"/search?rel=Author&q="+q+"&l=10", "", OpSearch)
	return s
}

// verifyToken re-reads one acked token through the front door.
func verifyToken(cfg Config, a ackedToken) (sample, bool) {
	s, status, body := request(cfg, http.MethodGet, "/v1/"+a.tenant+"/search?rel=Author&q="+a.token+"&l=5", "", OpVerify)
	if status != http.StatusOK {
		return s, false
	}
	var out struct {
		Count int `json:"count"`
	}
	if err := json.Unmarshal(body, &out); err != nil || out.Count < 1 {
		s.err = true
		return s, false
	}
	return s, true
}

// request issues one HTTP call, retrying retryable 429/503 answers (the
// router emits them during drains and evictions) a bounded number of
// times — a closed-loop client behind a migrating fleet is expected to
// retry, not to count the drain as an error.
func request(cfg Config, method, path, body, class string) (sample, int, []byte) {
	start := time.Now()
	var (
		status int
		node   string
		data   []byte
	)
	failed := true
	for attempt := 0; attempt < 50; attempt++ {
		var rd io.Reader
		if body != "" {
			rd = strings.NewReader(body)
		}
		req, err := http.NewRequest(method, cfg.BaseURL+path, rd)
		if err != nil {
			break
		}
		resp, err := cfg.Client.Do(req)
		if err != nil {
			// Connection-level failure: the fleet may be mid-failover.
			time.Sleep(100 * time.Millisecond)
			continue
		}
		data, _ = io.ReadAll(resp.Body)
		_ = resp.Body.Close()
		status = resp.StatusCode
		node = resp.Header.Get("X-Sizelos-Node")
		if status == http.StatusTooManyRequests || status == http.StatusServiceUnavailable ||
			status == http.StatusBadGateway {
			time.Sleep(100 * time.Millisecond)
			continue
		}
		failed = status >= 400
		break
	}
	return sample{class: class, d: time.Since(start), node: node, err: failed}, status, data
}

func percentile(sorted []time.Duration, p int) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	idx := (len(sorted)*p + 99) / 100
	if idx > 0 {
		idx--
	}
	return sorted[idx]
}
