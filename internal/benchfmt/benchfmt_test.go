package benchfmt

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

const sampleOut = `
goos: linux
BenchmarkRankCompute/serial-4         	      10	 123456789 ns/op	 1024 B/op	      17 allocs/op
BenchmarkRankCompute/parallel-4       	      40	  31234567 ns/op	 2048 B/op	      21 allocs/op
BenchmarkEndToEndSearch/cached        	    5000	    240000 ns/op	    99.5 cache_hit_pct
PASS
ok  	sizelos	12.3s
`

func TestParse(t *testing.T) {
	results := Parse(sampleOut)
	if len(results) != 3 {
		t.Fatalf("parsed %d results, want 3: %+v", len(results), results)
	}
	r := results[0]
	if r.Name != "BenchmarkRankCompute/serial" || r.Iterations != 10 ||
		r.NsPerOp != 123456789 || r.BytesPerOp != 1024 || r.AllocsOp != 17 {
		t.Errorf("result[0] = %+v", r)
	}
	if got := results[2].Metrics["cache_hit_pct"]; got != 99.5 {
		t.Errorf("custom metric = %v, want 99.5", got)
	}
}

func writeReport(t *testing.T, dir string, n int, r Report) {
	t.Helper()
	data, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "BENCH_"+itoa(n)+".json"), data, 0o644); err != nil {
		t.Fatal(err)
	}
}

func itoa(n int) string {
	if n >= 10 {
		return itoa(n/10) + string(rune('0'+n%10))
	}
	return string(rune('0' + n))
}

func TestLatestPicksHighestMatching(t *testing.T) {
	dir := t.TempDir()
	writeReport(t, dir, 1, Report{GOMAXPROCS: 1, Generated: "one"})
	writeReport(t, dir, 2, Report{GOMAXPROCS: 4, Generated: "two"})
	writeReport(t, dir, 10, Report{GOMAXPROCS: 1, Generated: "ten"})

	r, path, ok, err := Latest(dir, nil)
	if err != nil || !ok {
		t.Fatalf("Latest: %v %v", ok, err)
	}
	if r.Generated != "ten" || filepath.Base(path) != "BENCH_10.json" {
		t.Errorf("unfiltered latest = %s (%s)", r.Generated, path)
	}

	r, path, ok, err = Latest(dir, func(r Report) bool { return r.GOMAXPROCS == 4 })
	if err != nil || !ok {
		t.Fatalf("Latest(4 cores): %v %v", ok, err)
	}
	if r.Generated != "two" || filepath.Base(path) != "BENCH_2.json" {
		t.Errorf("filtered latest = %s (%s)", r.Generated, path)
	}

	if _, _, ok, err := Latest(dir, func(r Report) bool { return r.GOMAXPROCS == 64 }); err != nil || ok {
		t.Errorf("Latest(64 cores) = %v, %v; want no match", ok, err)
	}
}

func TestNextFree(t *testing.T) {
	dir := t.TempDir()
	writeReport(t, dir, 1, Report{})
	writeReport(t, dir, 2, Report{})
	path, err := NextFree(dir)
	if err != nil {
		t.Fatal(err)
	}
	if filepath.Base(path) != "BENCH_3.json" {
		t.Errorf("NextFree = %s, want BENCH_3.json", path)
	}
}

func TestResultByName(t *testing.T) {
	r := Report{Results: []Result{
		{Name: "A", NsPerOp: 9},
		{Name: "A", NsPerOp: 1}, // -count > 1 duplicate; fastest wins
		{Name: "A", NsPerOp: 4},
		{Name: "B", NsPerOp: 2},
		{Name: "B"}, // missing timing never displaces a timed run
	}}
	byName := r.ResultByName()
	if len(byName) != 2 || byName["A"].NsPerOp != 1 || byName["B"].NsPerOp != 2 {
		t.Errorf("ResultByName = %+v", byName)
	}
}
