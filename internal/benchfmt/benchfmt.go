package benchfmt

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
)

// GateFamilies is the ns/op family regex the CI regression gate watches:
// the setup and query hot paths whose regressions would be user-visible,
// plus the mutation write path (incremental graph maintenance, the
// warm-started re-rank, and the residual-push re-rank — the
// streaming-ingest hot loop; "RerankResidual" also matches the
// RerankResidualParallel serial-vs-tiled pair, keeping the parallel
// schedule's overhead under watch), the durability tier (the WAL-attached
// commit path and snapshot+WAL-tail crash recovery), and the streaming
// query pair (the limit-10 first page vs the full materializing drain —
// gating both keeps the early-termination gap itself under watch), and
// the QoS fast path (the uncontended rate-limit + admission check every
// served request pays — it must stay a rounding error next to the query
// itself), and the scale-out front door (one query through the
// consistent-hash router and its reverse proxy to an owner node — gating
// it next to EndToEndSearch keeps the routing tier's tax visible).
const GateFamilies = "RankCompute|RankCompile|NewEngine|EndToEndSearch|DataGraphBuild|IndexBuild|MutateIncremental|RerankResidual|WALAppend|RecoveryReplay|QueryStream|QueryDrain|AdmissionOverhead|RoutedQuery"

// ArchiveFamilies is the default benchjson archive set: every gated family
// plus the Fig-10 paper-figure benches (measured for the trajectory but
// not gated — they track paper reproduction cells, not service latency).
// Deriving it from GateFamilies guarantees committed baselines always
// cover whatever the gate compares.
const ArchiveFamilies = "Fig10|" + GateFamilies

// Result is one parsed benchmark line.
type Result struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	NsPerOp    float64            `json:"ns_per_op,omitempty"`
	BytesPerOp float64            `json:"bytes_per_op,omitempty"`
	AllocsOp   float64            `json:"allocs_per_op,omitempty"`
	Metrics    map[string]float64 `json:"metrics,omitempty"`
}

// Report is the BENCH_<n>.json document.
type Report struct {
	Generated  string   `json:"generated"`
	GoVersion  string   `json:"go_version"`
	GOMAXPROCS int      `json:"gomaxprocs"`
	BenchRegex string   `json:"bench_regex"`
	Package    string   `json:"package"`
	Count      int      `json:"count"`
	Results    []Result `json:"results"`
}

// ResultByName indexes the report's results. Duplicate names (from
// -count > 1) keep the fastest ns/op occurrence — the run least disturbed
// by cold caches or scheduler noise — so repeated counts actually reduce
// comparison flakiness.
func (r *Report) ResultByName() map[string]Result {
	out := make(map[string]Result, len(r.Results))
	for _, res := range r.Results {
		prev, ok := out[res.Name]
		if !ok || Faster(res, prev) {
			out[res.Name] = res
		}
	}
	return out
}

// Faster is the duplicate-selection rule for -count > 1 runs, shared by
// baseline indexing and the gate's current-run dedup so both sides of a
// comparison always pick the same statistic: a beats b when it has a
// timing and b doesn't, or when its ns/op is lower.
func Faster(a, b Result) bool {
	if a.NsPerOp <= 0 {
		return false
	}
	return b.NsPerOp <= 0 || a.NsPerOp < b.NsPerOp
}

var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+(\d+)\s+(.*)$`)

// Parse extracts Result entries from `go test -bench` textual output.
func Parse(out string) []Result {
	var results []Result
	for _, line := range strings.Split(out, "\n") {
		m := benchLine.FindStringSubmatch(strings.TrimSpace(line))
		if m == nil {
			continue
		}
		iters, err := strconv.ParseInt(m[2], 10, 64)
		if err != nil {
			continue
		}
		r := Result{Name: m[1], Iterations: iters}
		fields := strings.Fields(m[3])
		for i := 0; i+1 < len(fields); i += 2 {
			val, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			switch unit := fields[i+1]; unit {
			case "ns/op":
				r.NsPerOp = val
			case "B/op":
				r.BytesPerOp = val
			case "allocs/op":
				r.AllocsOp = val
			default:
				if r.Metrics == nil {
					r.Metrics = make(map[string]float64)
				}
				r.Metrics[unit] = val
			}
		}
		results = append(results, r)
	}
	return results
}

var benchFile = regexp.MustCompile(`^BENCH_(\d+)\.json$`)

// Load reads one report file.
func Load(path string) (Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Report{}, err
	}
	var r Report
	if err := json.Unmarshal(data, &r); err != nil {
		return Report{}, fmt.Errorf("%s: %w", path, err)
	}
	return r, nil
}

// Latest returns the committed report with the highest sequence number
// that satisfies keep (nil keeps everything), plus its path. ok is false
// when no report qualifies.
func Latest(dir string, keep func(Report) bool) (report Report, path string, ok bool, err error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return Report{}, "", false, err
	}
	bestN := -1
	for _, e := range entries {
		m := benchFile.FindStringSubmatch(e.Name())
		if m == nil {
			continue
		}
		n, err := strconv.Atoi(m[1])
		if err != nil || n <= bestN {
			continue
		}
		p := filepath.Join(dir, e.Name())
		r, err := Load(p)
		if err != nil {
			return Report{}, "", false, err
		}
		if keep != nil && !keep(r) {
			continue
		}
		bestN, report, path, ok = n, r, p, true
	}
	return report, path, ok, nil
}

// NextFree returns the first BENCH_<n>.json path that does not exist yet.
func NextFree(dir string) (string, error) {
	for n := 1; n < 10000; n++ {
		path := filepath.Join(dir, fmt.Sprintf("BENCH_%d.json", n))
		if _, err := os.Stat(path); os.IsNotExist(err) {
			return path, nil
		} else if err != nil {
			return "", err
		}
	}
	return "", fmt.Errorf("no free BENCH_<n>.json slot in %s", dir)
}
