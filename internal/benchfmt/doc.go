// Package benchfmt is the shared vocabulary of the repo's performance
// trajectory: the BENCH_<n>.json report schema, the parser for `go test
// -bench` output, and helpers to locate reports on disk. cmd/benchjson
// archives reports with it; cmd/benchgate replays them as CI regression
// baselines.
//
// # Invariants
//
//   - ArchiveFamilies is derived from GateFamilies (a superset by
//     construction), so a committed baseline always covers every family
//     the gate will later compare. Adding a family to the gate without
//     re-archiving a baseline disarms the comparison for that family — the
//     gate treats it as "not in baseline", so new families must land
//     together with the BENCH_<n>.json that records them.
//   - Baselines are only comparable on matching hardware: the gate
//     compares a report when GOMAXPROCS matches the runner, and skips
//     (writing its skip marker, which CI turns into a failure while a
//     matching baseline exists) otherwise.
//   - Duplicate benchmark names (-count > 1) resolve to the fastest ns/op
//     occurrence on BOTH sides of a comparison (Faster), so repeated
//     counts reduce noise instead of biasing one side.
//   - Benchmarks feeding the gate must be stationary: per-op cost must not
//     drift with b.N (mutation streams delete the previous op's tuple
//     before inserting the next), or the gate compares different workloads
//     at different -benchtime settings.
package benchfmt
