package ostree

import (
	"reflect"
	"testing"

	"sizelos/internal/datagen"
	"sizelos/internal/datagraph"
	"sizelos/internal/rank"
	"sizelos/internal/relational"
)

// TestJunctionTopLSkipsTombstones is the regression test for the TOP-l
// junction extraction: DBSource.ChildrenTopL materializes its lists by
// scanning the junction relation's tuple store directly, and a tombstoned
// junction row must not connect parent to child there — exactly as the
// fkIndex-driven Children path and the rebuilt data graph already have it.
func TestJunctionTopLSkipsTombstones(t *testing.T) {
	cfg := datagen.DefaultDBLPConfig()
	cfg.Authors = 60
	cfg.Papers = 240
	cfg.Conferences = 6
	cfg.YearSpan = 4
	db, err := datagen.GenerateDBLP(cfg)
	if err != nil {
		t.Fatalf("GenerateDBLP: %v", err)
	}
	g, err := datagraph.Build(db)
	if err != nil {
		t.Fatalf("datagraph.Build: %v", err)
	}
	scores, _, err := rank.Compute(g, datagen.DBLPGA1(), rank.DefaultOptions())
	if err != nil {
		t.Fatalf("rank.Compute: %v", err)
	}
	gds := datagen.AuthorGDS()
	paperNode := gds.Find("Paper")
	author := db.Relation("Author")
	writes := db.Relation("Writes")
	root, ok := author.LookupPK(1)
	if !ok {
		t.Fatal("author pk 1 missing")
	}

	before := NewDBSource(db, scores).ChildrenTopL(paperNode, root, 0, 1000)
	if len(before) < 2 {
		t.Fatalf("root author has %d papers, need >= 2", len(before))
	}

	// Tombstone the one Writes row linking the root to its top paper.
	fi := writes.FKIndexOf("author")
	var victimPK int64 = -1
	retracted := before[0]
	for _, row := range db.JoinChildren(writes, fi, author.PK(root)) {
		if paperID, ok := db.Relation("Paper").LookupPK(writes.Tuples[row][writes.ColIndex("paper")].Int); ok && paperID == retracted {
			victimPK = writes.PK(row)
			break
		}
	}
	if victimPK < 0 {
		t.Fatal("no writes row found for the top paper")
	}
	if _, err := db.Apply(relational.Batch{Deletes: []relational.DeleteOp{{Rel: "Writes", PK: victimPK}}}); err != nil {
		t.Fatalf("Apply: %v", err)
	}

	// A fresh DBSource (per-query lists, as the engine builds them) must
	// drop the retracted link and agree with a rebuilt graph's extraction.
	after := NewDBSource(db, scores).ChildrenTopL(paperNode, root, 0, 1000)
	for _, id := range after {
		if id == retracted {
			t.Fatalf("tombstoned junction row still connects paper %d in the TOP-l path", retracted)
		}
	}
	g2, err := datagraph.Build(db)
	if err != nil {
		t.Fatalf("rebuild graph: %v", err)
	}
	want := NewGraphSource(g2, scores).ChildrenTopL(paperNode, root, 0, 1000)
	if !reflect.DeepEqual(after, want) {
		t.Fatalf("db TopL %v != graph TopL %v after retraction", after, want)
	}
}
