package ostree

import (
	"testing"

	"sizelos/internal/datagen"
	"sizelos/internal/relational"
)

// Missing scores for a relation named by the G_DS is a configuration error
// the source surfaces as a panic; Generate's callers (the facade) prevent
// it by construction. This test pins the failure mode.
func TestMissingScoresPanics(t *testing.T) {
	f := getFixture(t)
	gds := datagen.AuthorGDS()
	broken := relational.DBScores{}
	for k, v := range f.scores {
		if k != "Paper" {
			broken[k] = v
		}
	}
	src := NewGraphSource(f.graph, broken)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on missing Paper scores")
		}
	}()
	_, _ = Generate(src, gds, authorRoot(t, f, 1), GenOptions{})
}

// A G_DS node whose junction references a relation with no rows for the
// parent must yield an empty child set, not an error.
func TestEmptyJoinResults(t *testing.T) {
	f := getFixture(t)
	gds := datagen.AuthorGDS()
	// The least productive author may have very few papers; every extraction
	// path must tolerate empty joins. Use an author with no papers if one
	// exists, otherwise any author (the test is then vacuous but harmless).
	author := f.db.Relation("Author")
	writes := f.db.Relation("Writes")
	fk := writes.FKIndexOf("author")
	var root relational.TupleID = 0
	for i := 0; i < author.Len(); i++ {
		if len(f.db.JoinChildren(writes, fk, author.PK(relational.TupleID(i)))) == 0 {
			root = relational.TupleID(i)
			break
		}
	}
	tree, err := Generate(f.graphSource(), gds, root, GenOptions{})
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	if tree.Len() < 1 {
		t.Fatal("tree must at least contain the root")
	}
	if err := tree.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}

// DBSource must not mutate relation data across repeated extractions
// (its caches are read-only indexes).
func TestDBSourceRepeatable(t *testing.T) {
	f := getFixture(t)
	gds := datagen.AuthorGDS()
	src := f.dbSource()
	root := authorRoot(t, f, 1)
	a, err := Generate(src, gds, root, GenOptions{})
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	b, err := Generate(src, gds, root, GenOptions{})
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	if a.Len() != b.Len() {
		t.Fatalf("repeat generation differs: %d vs %d", a.Len(), b.Len())
	}
	// TopL twice with the same cached ordered index.
	paper := gds.Find("Paper")
	x := src.ChildrenTopL(paper, root, 0, 5)
	y := src.ChildrenTopL(paper, root, 0, 5)
	if len(x) != len(y) {
		t.Fatalf("cached TopL differs: %v vs %v", x, y)
	}
}
