package ostree

import (
	"fmt"
	"sort"
	"strings"
)

// RenderOptions controls OS rendering.
type RenderOptions struct {
	// AttrTheta is the attribute-affinity threshold θ′ (§2.1): columns with
	// affinity below it are not displayed. Key columns are never displayed.
	AttrTheta float64
	// Keep restricts rendering to a node subset (a size-l OS); nil renders
	// the whole tree. The subset must contain the root to render anything.
	Keep []NodeID
	// ShowWeights appends each node's local importance, as in the paper's
	// Figure 3.
	ShowWeights bool
}

// Render prints the OS in the indented style of the paper's Examples 4 and
// 5: one tuple per line, children indented under their parent, each line
// "Label: attr, attr, ...".
func (t *Tree) Render(opts RenderOptions) string {
	var keep map[NodeID]bool
	if opts.Keep != nil {
		keep = make(map[NodeID]bool, len(opts.Keep))
		for _, id := range opts.Keep {
			keep[id] = true
		}
		if !keep[t.Root()] {
			return ""
		}
	}
	var b strings.Builder
	t.renderNode(&b, t.Root(), keep, opts)
	return b.String()
}

func (t *Tree) renderNode(b *strings.Builder, id NodeID, keep map[NodeID]bool, opts RenderOptions) {
	n := &t.Nodes[id]
	indent := strings.Repeat(".", int(n.Depth)*2)
	if n.Depth > 0 {
		indent += " "
	}
	fmt.Fprintf(b, "%s%s: %s", indent, n.GDS.Label, t.describe(id, opts.AttrTheta))
	if opts.ShowWeights {
		fmt.Fprintf(b, "  [%.2f]", n.Weight)
	}
	b.WriteByte('\n')
	// Children are rendered grouped by G_DS role, highest-weight first
	// within a role, which mirrors the paper's examples (papers first, then
	// details).
	children := make([]NodeID, 0, len(n.Children))
	for _, c := range n.Children {
		if keep == nil || keep[c] {
			children = append(children, c)
		}
	}
	sort.SliceStable(children, func(a, b int) bool {
		ca, cb := &t.Nodes[children[a]], &t.Nodes[children[b]]
		if ca.GDS != cb.GDS {
			return false // preserve role grouping as generated
		}
		return ca.Weight > cb.Weight
	})
	for _, c := range children {
		t.renderNode(b, c, keep, opts)
	}
}

// describe renders the displayable attributes of a node's tuple: non-key
// columns whose attribute affinity passes θ′.
func (t *Tree) describe(id NodeID, attrTheta float64) string {
	n := &t.Nodes[id]
	rel := t.DB.Relations[n.Rel]
	tup := rel.Tuples[n.Tuple]
	var parts []string
	for ci, col := range rel.Columns {
		if ci == rel.PKCol || rel.FKIndexOf(col.Name) >= 0 {
			continue
		}
		if col.Affinity < attrTheta {
			continue
		}
		parts = append(parts, tup[ci].String())
	}
	if len(parts) == 0 {
		// Fall back to the primary key so every tuple renders something.
		return fmt.Sprintf("#%d", rel.PK(n.Tuple))
	}
	return strings.Join(parts, ", ")
}
