package ostree

import (
	"fmt"

	"sizelos/internal/relational"
	"sizelos/internal/schemagraph"
)

// GenOptions controls complete-OS generation.
type GenOptions struct {
	// MaxDepth excludes tuples deeper than this from the OS; generating for
	// a size-l query passes l-1, implementing the paper's footnote 1 ("any
	// tuples or subtrees which have distance at least l from the root are
	// excluded"). Zero means unbounded.
	MaxDepth int
	// MaxNodes aborts generation beyond this many tuples (safety valve for
	// pathological G_DS configurations). Zero means unbounded.
	MaxNodes int
}

// Generate materializes the complete OS for the data subject tuple root
// (identified within the G_DS root relation) by breadth-first traversal of
// the G_DS: the paper's Algorithm 5. Each node is annotated with its local
// importance Im(OS, t_i) = Im(t_i)·Af(R_i).
//
// A child tuple identical to its grandparent node (same relation and tuple)
// is skipped: hopping Author -> Paper -> Co-Author must not re-list the
// author we came from, matching Example 4 where Christos never appears as
// his own co-author.
func Generate(src Source, gds *schemagraph.GDS, root relational.TupleID, opts GenOptions) (*Tree, error) {
	db := src.DB()
	rootRel := db.Relation(gds.DSName)
	if rootRel == nil {
		return nil, fmt.Errorf("ostree: unknown data subject relation %s", gds.DSName)
	}
	if int(root) < 0 || int(root) >= rootRel.Len() {
		return nil, fmt.Errorf("ostree: root tuple %d out of range for %s", root, gds.DSName)
	}
	scores := src.Scores()
	t := &Tree{GDS: gds, DB: db}
	t.addNode(Node{
		GDS:    gds.Root,
		Rel:    int32(db.RelIndex(gds.DSName)),
		Tuple:  root,
		Weight: relScores(scores, gds.DSName)[root] * gds.Root.Affinity,
		Parent: None,
		Depth:  0,
	})

	queue := []NodeID{0}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		curNode := t.Nodes[cur]
		if opts.MaxDepth > 0 && int(curNode.Depth) >= opts.MaxDepth {
			continue
		}
		for _, gchild := range curNode.GDS.Children {
			childScores := relScores(scores, gchild.Rel)
			childRel := int32(db.RelIndex(gchild.Rel))
			for _, ct := range src.Children(gchild, curNode.Tuple) {
				if skipBacktrack(t, cur, childRel, ct) {
					continue
				}
				id := t.addNode(Node{
					GDS:    gchild,
					Rel:    childRel,
					Tuple:  ct,
					Weight: childScores[ct] * gchild.Affinity,
					Parent: cur,
					Depth:  curNode.Depth + 1,
				})
				if opts.MaxNodes > 0 && len(t.Nodes) > opts.MaxNodes {
					return nil, fmt.Errorf("ostree: OS exceeds %d nodes", opts.MaxNodes)
				}
				queue = append(queue, id)
			}
		}
	}
	return t, nil
}

// skipBacktrack reports whether the candidate child (rel, tuple) is the
// same tuple as the would-be grandparent node.
func skipBacktrack(t *Tree, parent NodeID, rel int32, tuple relational.TupleID) bool {
	gp := t.Nodes[parent].Parent
	if gp == None {
		return false
	}
	g := &t.Nodes[gp]
	return g.Rel == rel && g.Tuple == tuple
}
