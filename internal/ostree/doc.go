// Package ostree materializes Object Summaries: the tree of tuples around a
// data-subject tuple t_DS, produced by traversing a G_DS breadth-first
// (paper §2.1 and Algorithm 5). It provides
//
//   - the OS tree representation consumed by the size-l algorithms,
//   - two extraction sources — directly against the relational database and
//     against the in-memory data graph — matching the two generation paths
//     whose costs Figure 10f compares, and
//   - the indented rendering used in the paper's Examples 4 and 5.
//
// # Invariants
//
//   - The two sources (database joins and data graph) must produce
//     identical trees for the same (G_DS, t_DS) — Figure 10f compares
//     their cost, not their output. Junction tuples are traversed but
//     never appear as OS nodes; tombstoned junction rows are skipped by
//     both sources.
//   - Trees hold TupleIDs, not copies: they are snapshots of one mutation
//     quiescence and must not be traversed across an Engine.Mutate (the
//     engine's summary cache keys them by mutation epoch for this reason).
package ostree
