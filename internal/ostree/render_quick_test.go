package ostree

import (
	"math/rand"
	"strings"
	"testing"

	"sizelos/internal/datagen"
)

// Property: subset rendering prints exactly the kept nodes whose whole
// root path is kept (the connected component of the root within the keep
// set) — never disconnected fragments.
func TestRenderSubsetConnectivityProperty(t *testing.T) {
	f := getFixture(t)
	gds := datagen.AuthorGDS()
	tree, err := Generate(f.graphSource(), gds, authorRoot(t, f, 1), GenOptions{})
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	r := rand.New(rand.NewSource(555))
	for trial := 0; trial < 30; trial++ {
		keep := []NodeID{tree.Root()}
		inKeep := map[NodeID]bool{tree.Root(): true}
		for i := 1; i < tree.Len(); i++ {
			if r.Intn(3) == 0 {
				keep = append(keep, NodeID(i))
				inKeep[NodeID(i)] = true
			}
		}
		// Expected visible set: kept nodes whose entire ancestor chain is
		// kept.
		want := 0
		for _, id := range keep {
			visible := true
			for cur := id; cur != tree.Root(); cur = tree.Nodes[cur].Parent {
				if !inKeep[tree.Nodes[cur].Parent] {
					visible = false
					break
				}
			}
			if visible {
				want++
			}
		}
		out := tree.Render(RenderOptions{Keep: keep})
		if got := strings.Count(out, "\n"); got != want {
			t.Fatalf("trial %d: rendered %d lines, want %d (keep size %d)",
				trial, got, want, len(keep))
		}
	}
}
