package ostree

import (
	"reflect"
	"sort"
	"strings"
	"testing"

	"sizelos/internal/datagen"
	"sizelos/internal/datagraph"
	"sizelos/internal/rank"
	"sizelos/internal/relational"
	"sizelos/internal/schemagraph"
)

// fixture bundles a generated DBLP database with scores and both sources.
type fixture struct {
	db     *relational.DB
	graph  *datagraph.Graph
	scores relational.DBScores
}

var shared *fixture

func getFixture(t *testing.T) *fixture {
	t.Helper()
	if shared != nil {
		return shared
	}
	cfg := datagen.DefaultDBLPConfig()
	cfg.Authors = 80
	cfg.Papers = 400
	cfg.Conferences = 8
	cfg.YearSpan = 6
	db, err := datagen.GenerateDBLP(cfg)
	if err != nil {
		t.Fatalf("GenerateDBLP: %v", err)
	}
	g, err := datagraph.Build(db)
	if err != nil {
		t.Fatalf("datagraph.Build: %v", err)
	}
	scores, _, err := rank.Compute(g, datagen.DBLPGA1(), rank.DefaultOptions())
	if err != nil {
		t.Fatalf("rank.Compute: %v", err)
	}
	shared = &fixture{db: db, graph: g, scores: scores}
	return shared
}

func (f *fixture) dbSource() *DBSource       { return NewDBSource(f.db, f.scores) }
func (f *fixture) graphSource() *GraphSource { return NewGraphSource(f.graph, f.scores) }

func authorRoot(t *testing.T, f *fixture, pk int64) relational.TupleID {
	t.Helper()
	id, ok := f.db.Relation("Author").LookupPK(pk)
	if !ok {
		t.Fatalf("author %d not found", pk)
	}
	return id
}

func TestGenerateCompleteOS(t *testing.T) {
	f := getFixture(t)
	gds := datagen.AuthorGDS()
	tree, err := Generate(f.dbSource(), gds, authorRoot(t, f, 1), GenOptions{})
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	if err := tree.Validate(); err != nil {
		t.Fatalf("tree invalid: %v", err)
	}
	if tree.Len() < 10 {
		t.Fatalf("OS too small: %d tuples (famous author should be prolific)", tree.Len())
	}
	root := tree.Nodes[0]
	if root.GDS.Label != "Author" || root.Depth != 0 {
		t.Errorf("bad root: %+v", root)
	}
	// Every depth-1 node is a Paper reached via Writes.
	for _, c := range root.Children {
		if tree.Nodes[c].GDS.Label != "Paper" {
			t.Errorf("depth-1 node label %s, want Paper", tree.Nodes[c].GDS.Label)
		}
	}
	// Local importance equals global score times node affinity.
	paperScores := f.scores["Paper"]
	for _, c := range root.Children {
		n := tree.Nodes[c]
		want := paperScores[n.Tuple] * 0.92
		if diff := n.Weight - want; diff > 1e-9 || diff < -1e-9 {
			t.Fatalf("paper weight %v, want %v", n.Weight, want)
		}
	}
}

func TestGenerateSourcesAgree(t *testing.T) {
	f := getFixture(t)
	gds := datagen.AuthorGDS()
	root := authorRoot(t, f, 2)
	a, err := Generate(f.dbSource(), gds, root, GenOptions{})
	if err != nil {
		t.Fatalf("Generate(db): %v", err)
	}
	b, err := Generate(f.graphSource(), gds, root, GenOptions{})
	if err != nil {
		t.Fatalf("Generate(graph): %v", err)
	}
	if a.Len() != b.Len() {
		t.Fatalf("sizes differ: db=%d graph=%d", a.Len(), b.Len())
	}
	for i := range a.Nodes {
		an, bn := a.Nodes[i], b.Nodes[i]
		if an.Rel != bn.Rel || an.Tuple != bn.Tuple || an.Parent != bn.Parent {
			t.Fatalf("node %d differs: db=%+v graph=%+v", i, an, bn)
		}
	}
}

func TestGrandparentExclusion(t *testing.T) {
	f := getFixture(t)
	gds := datagen.AuthorGDS()
	root := authorRoot(t, f, 1)
	tree, err := Generate(f.graphSource(), gds, root, GenOptions{})
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	authorRel := int32(f.db.RelIndex("Author"))
	for i := 1; i < tree.Len(); i++ {
		n := tree.Nodes[i]
		if n.GDS.Label == "Co-Author" && n.Rel == authorRel && n.Tuple == root {
			t.Fatal("root author listed as own co-author")
		}
	}
}

func TestGenerateMaxDepth(t *testing.T) {
	f := getFixture(t)
	gds := datagen.AuthorGDS()
	tree, err := Generate(f.graphSource(), gds, authorRoot(t, f, 1), GenOptions{MaxDepth: 1})
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	for i := range tree.Nodes {
		if tree.Nodes[i].Depth > 1 {
			t.Fatalf("node at depth %d despite MaxDepth 1", tree.Nodes[i].Depth)
		}
	}
	full, err := Generate(f.graphSource(), gds, authorRoot(t, f, 1), GenOptions{})
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	if tree.Len() >= full.Len() {
		t.Errorf("depth-limited OS (%d) not smaller than full (%d)", tree.Len(), full.Len())
	}
}

func TestGenerateMaxNodes(t *testing.T) {
	f := getFixture(t)
	gds := datagen.AuthorGDS()
	if _, err := Generate(f.graphSource(), gds, authorRoot(t, f, 1), GenOptions{MaxNodes: 5}); err == nil {
		t.Fatal("MaxNodes cap not enforced")
	}
}

func TestGenerateErrors(t *testing.T) {
	f := getFixture(t)
	gds := datagen.AuthorGDS()
	if _, err := Generate(f.graphSource(), gds, relational.TupleID(1<<30), GenOptions{}); err == nil {
		t.Error("out-of-range root accepted")
	}
}

func TestIsConnectedSubtree(t *testing.T) {
	f := getFixture(t)
	gds := datagen.AuthorGDS()
	tree, err := Generate(f.graphSource(), gds, authorRoot(t, f, 1), GenOptions{})
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	root := tree.Root()
	child := tree.Nodes[root].Children[0]
	grand := NodeID(-1)
	if cs := tree.Nodes[child].Children; len(cs) > 0 {
		grand = cs[0]
	}
	tests := []struct {
		name string
		ids  []NodeID
		want bool
	}{
		{"empty", nil, false},
		{"root only", []NodeID{root}, true},
		{"root+child", []NodeID{root, child}, true},
		{"child without root", []NodeID{child}, false},
		{"gap to grandchild", []NodeID{root, grand}, false},
		{"full chain", []NodeID{root, child, grand}, true},
		{"out of range", []NodeID{root, NodeID(1 << 20)}, false},
	}
	for _, tc := range tests {
		if grand == -1 && strings.Contains(tc.name, "grand") {
			continue
		}
		t.Run(tc.name, func(t *testing.T) {
			if got := tree.IsConnectedSubtree(tc.ids); got != tc.want {
				t.Errorf("IsConnectedSubtree(%v) = %v, want %v", tc.ids, got, tc.want)
			}
		})
	}
}

func TestImportanceSums(t *testing.T) {
	f := getFixture(t)
	gds := datagen.AuthorGDS()
	tree, err := Generate(f.graphSource(), gds, authorRoot(t, f, 3), GenOptions{})
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	sum := 0.0
	all := make([]NodeID, tree.Len())
	for i := range tree.Nodes {
		sum += tree.Nodes[i].Weight
		all[i] = NodeID(i)
	}
	if got := tree.TotalImportance(); !approx(got, sum) {
		t.Errorf("TotalImportance = %v, want %v", got, sum)
	}
	if got := tree.ImportanceOf(all); !approx(got, sum) {
		t.Errorf("ImportanceOf(all) = %v, want %v", got, sum)
	}
}

func approx(a, b float64) bool {
	d := a - b
	return d < 1e-6 && d > -1e-6
}

func TestChildrenTopLAgree(t *testing.T) {
	f := getFixture(t)
	gds := datagen.AuthorGDS()
	paperNode := gds.Find("Paper")
	coauthorNode := gds.Find("Co-Author")
	yearNode := gds.Find("Year")
	dbs := f.dbSource()
	gs := f.graphSource()
	root := authorRoot(t, f, 1)

	// Junction step from the root author.
	for _, min := range []float64{0, 0.5, 5, 1e9} {
		for _, limit := range []int{1, 3, 100} {
			a := dbs.ChildrenTopL(paperNode, root, min, limit)
			b := gs.ChildrenTopL(paperNode, root, min, limit)
			if !reflect.DeepEqual(a, b) {
				t.Fatalf("paper TopL(min=%v,limit=%d): db=%v graph=%v", min, limit, a, b)
			}
			// Verify against naive: full children filtered.
			want := naiveTopL(gs.Children(paperNode, root), f.scores["Paper"], min, limit)
			if !reflect.DeepEqual(a, want) {
				t.Fatalf("paper TopL(min=%v,limit=%d) = %v, want %v", min, limit, a, want)
			}
		}
	}

	// ChildFK-style step does not exist on Author GDS; exercise ParentFK
	// (Year under Paper) and junction (Co-Author) instead.
	papers := gs.Children(paperNode, root)
	if len(papers) == 0 {
		t.Fatal("famous author has no papers")
	}
	p := papers[0]
	for _, gn := range []*schemagraph.Node{coauthorNode, yearNode} {
		a := dbs.ChildrenTopL(gn, p, 0, 10)
		b := gs.ChildrenTopL(gn, p, 0, 10)
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("%s TopL: db=%v graph=%v", gn.Label, a, b)
		}
	}
}

func naiveTopL(ids []relational.TupleID, scores relational.Scores, min float64, limit int) []relational.TupleID {
	sorted := make([]relational.TupleID, len(ids))
	copy(sorted, ids)
	sort.Slice(sorted, func(a, b int) bool {
		sa, sb := scores[sorted[a]], scores[sorted[b]]
		if sa != sb {
			return sa > sb
		}
		return sorted[a] < sorted[b]
	})
	var out []relational.TupleID
	for _, id := range sorted {
		if len(out) >= limit {
			break
		}
		if scores[id] <= min {
			break
		}
		out = append(out, id)
	}
	return out
}

func TestRenderCompleteAndSubset(t *testing.T) {
	f := getFixture(t)
	gds := datagen.AuthorGDS()
	tree, err := Generate(f.graphSource(), gds, authorRoot(t, f, 1), GenOptions{})
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	out := tree.Render(RenderOptions{})
	if !strings.HasPrefix(out, "Author: Christos Faloutsos") {
		t.Errorf("render should start with the DS tuple, got %q", firstLine(out))
	}
	if !strings.Contains(out, ".. Paper: ") {
		t.Errorf("render missing indented papers:\n%s", clip(out))
	}
	// Subset rendering: root plus its first child only.
	keep := []NodeID{tree.Root(), tree.Nodes[tree.Root()].Children[0]}
	sub := tree.Render(RenderOptions{Keep: keep})
	if lines := strings.Count(sub, "\n"); lines != 2 {
		t.Errorf("subset render has %d lines, want 2:\n%s", lines, sub)
	}
	// Subset without root renders nothing.
	if got := tree.Render(RenderOptions{Keep: []NodeID{keep[1]}}); got != "" {
		t.Errorf("rootless subset rendered %q", got)
	}
	// Weights shown on demand.
	w := tree.Render(RenderOptions{Keep: keep, ShowWeights: true})
	if !strings.Contains(w, "[") {
		t.Errorf("ShowWeights missing weight annotations:\n%s", w)
	}
}

func firstLine(s string) string {
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		return s[:i]
	}
	return s
}

func clip(s string) string {
	if len(s) > 400 {
		return s[:400] + "..."
	}
	return s
}
