package ostree

import (
	"fmt"

	"sizelos/internal/relational"
	"sizelos/internal/schemagraph"
)

// NodeID indexes a node within a Tree's arena.
type NodeID int32

// None marks the absence of a node (the root's parent).
const None NodeID = -1

// Node is one tuple occurrence in an OS tree.
type Node struct {
	// GDS is the G_DS node this tuple was extracted under; it fixes the
	// node's role label and affinity.
	GDS *schemagraph.Node
	// Rel is the relation ordinal in the database.
	Rel int32
	// Tuple is the tuple id within the relation.
	Tuple relational.TupleID
	// Weight is the local importance Im(OS, t_i) = Im(t_i)·Af(t_i) (Eq. 3).
	Weight   float64
	Parent   NodeID
	Children []NodeID
	Depth    int32
}

// Tree is an Object Summary: an arena of nodes with Nodes[0] as the t_DS
// root. Complete OSs and prelim-l OSs share this representation.
type Tree struct {
	Nodes []Node
	// GDS is the schema graph the tree was generated from.
	GDS *schemagraph.GDS
	// DB is the database the tuples live in (needed for rendering).
	DB *relational.DB
}

// Len returns the number of tuples in the OS.
func (t *Tree) Len() int { return len(t.Nodes) }

// Root returns the root node id (always 0 for a non-empty tree).
func (t *Tree) Root() NodeID { return 0 }

// TotalImportance sums the local importance of all nodes: Im(S) of the
// complete OS (Eq. 2 applied to the full tree).
func (t *Tree) TotalImportance() float64 {
	sum := 0.0
	for i := range t.Nodes {
		sum += t.Nodes[i].Weight
	}
	return sum
}

// ImportanceOf sums the local importance of a node subset.
func (t *Tree) ImportanceOf(ids []NodeID) float64 {
	sum := 0.0
	for _, id := range ids {
		sum += t.Nodes[id].Weight
	}
	return sum
}

// IsConnectedSubtree reports whether the node set contains the root and
// every member's parent: the stand-alone requirement of Definition 1.
func (t *Tree) IsConnectedSubtree(ids []NodeID) bool {
	if len(ids) == 0 {
		return false
	}
	in := make(map[NodeID]bool, len(ids))
	for _, id := range ids {
		if id < 0 || int(id) >= len(t.Nodes) {
			return false
		}
		in[id] = true
	}
	if !in[t.Root()] {
		return false
	}
	for _, id := range ids {
		if id == t.Root() {
			continue
		}
		if !in[t.Nodes[id].Parent] {
			return false
		}
	}
	return true
}

// addNode appends a node and wires it to its parent.
func (t *Tree) addNode(n Node) NodeID {
	id := NodeID(len(t.Nodes))
	t.Nodes = append(t.Nodes, n)
	if n.Parent != None {
		p := &t.Nodes[n.Parent]
		p.Children = append(p.Children, id)
	}
	return id
}

// Validate checks arena invariants: parent links, child links, and depths.
// It exists for tests and debugging.
func (t *Tree) Validate() error {
	if len(t.Nodes) == 0 {
		return fmt.Errorf("ostree: empty tree")
	}
	if t.Nodes[0].Parent != None || t.Nodes[0].Depth != 0 {
		return fmt.Errorf("ostree: malformed root")
	}
	for i := 1; i < len(t.Nodes); i++ {
		n := &t.Nodes[i]
		if n.Parent < 0 || int(n.Parent) >= len(t.Nodes) {
			return fmt.Errorf("ostree: node %d has invalid parent %d", i, n.Parent)
		}
		p := &t.Nodes[n.Parent]
		if n.Depth != p.Depth+1 {
			return fmt.Errorf("ostree: node %d depth %d, parent depth %d", i, n.Depth, p.Depth)
		}
		found := false
		for _, c := range p.Children {
			if c == NodeID(i) {
				found = true
				break
			}
		}
		if !found {
			return fmt.Errorf("ostree: node %d missing from parent's child list", i)
		}
	}
	return nil
}
