package ostree

import (
	"fmt"
	"sort"

	"sizelos/internal/datagraph"
	"sizelos/internal/relational"
	"sizelos/internal/schemagraph"
)

// Source extracts the child tuples of an OS node under a G_DS node's
// traversal step. Two implementations exist: DBSource runs joins against
// the relational engine ("directly from the database"), GraphSource walks
// the in-memory data graph — the two OS generation paths compared in Figure
// 10f. Junction tuples are hopped over and never returned.
type Source interface {
	// Children returns all child tuples of parent under gn, in extraction
	// order.
	Children(gn *schemagraph.Node, parent relational.TupleID) []relational.TupleID
	// ChildrenTopL returns up to limit child tuples whose *global* score is
	// strictly greater than minScore, in descending score order: the
	// Avoidance Condition 2 extraction of Algorithm 4 (line 10). Callers
	// convert local-importance thresholds by dividing by the node's
	// affinity.
	ChildrenTopL(gn *schemagraph.Node, parent relational.TupleID, minScore float64, limit int) []relational.TupleID
	// DB returns the underlying database (for schema and rendering).
	DB() *relational.DB
	// Scores returns the active global-importance setting.
	Scores() relational.DBScores
	// Accesses returns the number of extraction operations performed.
	Accesses() int64
	// ResetAccesses zeroes the counter and returns its prior value.
	ResetAccesses() int64
}

// relScores resolves the scores array of a relation, panicking on a
// missing relation — a configuration error, not a runtime condition.
func relScores(scores relational.DBScores, rel string) relational.Scores {
	s, ok := scores[rel]
	if !ok {
		panic(fmt.Sprintf("ostree: no scores for relation %s", rel))
	}
	return s
}

// DBSource extracts children with joins against the relational engine.
// TOP-l extractions use importance-ordered FK indexes, built lazily per
// (G_DS node); this models a database index on the local-importance
// attribute li that the paper's SQL assumes.
type DBSource struct {
	db     *relational.DB
	scores relational.DBScores

	ordered map[*schemagraph.Node]*relational.OrderedFKIndex
	// junction caches, per junction-step G_DS node: children of each parent
	// key sorted by descending child score.
	junction map[*schemagraph.Node]map[int64][]relational.TupleID
}

// NewDBSource creates a database-backed extraction source for one ranking
// setting.
func NewDBSource(db *relational.DB, scores relational.DBScores) *DBSource {
	return &DBSource{
		db:       db,
		scores:   scores,
		ordered:  make(map[*schemagraph.Node]*relational.OrderedFKIndex),
		junction: make(map[*schemagraph.Node]map[int64][]relational.TupleID),
	}
}

// DB implements Source.
func (s *DBSource) DB() *relational.DB { return s.db }

// Scores implements Source.
func (s *DBSource) Scores() relational.DBScores { return s.scores }

// Accesses implements Source.
func (s *DBSource) Accesses() int64 { return s.db.Accesses() }

// ResetAccesses implements Source.
func (s *DBSource) ResetAccesses() int64 { return s.db.ResetAccesses() }

// Children implements Source.
func (s *DBSource) Children(gn *schemagraph.Node, parent relational.TupleID) []relational.TupleID {
	db := s.db
	parentRel := db.Relation(gn.Parent.Rel)
	switch gn.Step.Kind {
	case schemagraph.StepChildFK:
		child := db.Relation(gn.Rel)
		return db.JoinChildren(child, gn.Step.FKOrd, parentRel.PK(parent))
	case schemagraph.StepParentFK:
		child := db.Relation(gn.Rel)
		fkCol := parentRel.ColIndex(parentRel.FKs[gn.Step.FKOrd].Column)
		key := parentRel.Tuples[parent][fkCol].Int
		if id, ok := db.LookupParent(child, key); ok {
			return []relational.TupleID{id}
		}
		return nil
	case schemagraph.StepJunction:
		j := db.Relation(gn.Step.Junction)
		child := db.Relation(gn.Rel)
		rows := db.JoinChildren(j, gn.Step.JFKParent, parentRel.PK(parent))
		if len(rows) == 0 {
			return nil
		}
		db.ChargeAccess() // resolving the far side is the second join of the hop
		farCol := j.ColIndex(j.FKs[gn.Step.JFKChild].Column)
		out := make([]relational.TupleID, 0, len(rows))
		for _, row := range rows {
			if id, ok := child.LookupPK(j.Tuples[row][farCol].Int); ok {
				out = append(out, id)
			}
		}
		return out
	default:
		return nil
	}
}

// ChildrenTopL implements Source.
func (s *DBSource) ChildrenTopL(gn *schemagraph.Node, parent relational.TupleID, minScore float64, limit int) []relational.TupleID {
	db := s.db
	parentRel := db.Relation(gn.Parent.Rel)
	switch gn.Step.Kind {
	case schemagraph.StepChildFK:
		idx, ok := s.ordered[gn]
		if !ok {
			child := db.Relation(gn.Rel)
			idx = relational.BuildOrderedFKIndex(child, gn.Step.FKOrd, relScores(s.scores, gn.Rel))
			s.ordered[gn] = idx
		}
		return idx.TopL(db, parentRel.PK(parent), minScore, limit)
	case schemagraph.StepParentFK:
		ids := s.Children(gn, parent)
		return filterTopL(ids, relScores(s.scores, gn.Rel), minScore, limit)
	case schemagraph.StepJunction:
		lists, ok := s.junction[gn]
		if !ok {
			lists = buildJunctionLists(db, gn, relScores(s.scores, gn.Rel))
			s.junction[gn] = lists
		}
		db.ChargeAccess() // the TOP-l join is charged even when empty (§5.3)
		return topLFromSorted(lists[parentRel.PK(parent)], relScores(s.scores, gn.Rel), minScore, limit)
	default:
		return nil
	}
}

// buildJunctionLists materializes, for one junction-step G_DS node, the
// children of every parent key sorted by descending child score — the
// equivalent of an ORDER BY li index over the junction join.
func buildJunctionLists(db *relational.DB, gn *schemagraph.Node, childScores relational.Scores) map[int64][]relational.TupleID {
	j := db.Relation(gn.Step.Junction)
	child := db.Relation(gn.Rel)
	parentCol := j.ColIndex(j.FKs[gn.Step.JFKParent].Column)
	childCol := j.ColIndex(j.FKs[gn.Step.JFKChild].Column)
	lists := make(map[int64][]relational.TupleID)
	for ri, row := range j.Tuples {
		if j.Deleted(relational.TupleID(ri)) {
			continue // a retracted junction row no longer connects anything
		}
		pk := row[parentCol].Int
		if cid, ok := child.LookupPK(row[childCol].Int); ok {
			lists[pk] = append(lists[pk], cid)
		}
	}
	for pk, ids := range lists {
		sort.Slice(ids, func(a, b int) bool {
			sa, sb := childScores[ids[a]], childScores[ids[b]]
			if sa != sb {
				return sa > sb
			}
			return ids[a] < ids[b]
		})
		lists[pk] = ids
	}
	return lists
}

func topLFromSorted(sorted []relational.TupleID, scores relational.Scores, minScore float64, limit int) []relational.TupleID {
	var out []relational.TupleID
	for _, id := range sorted {
		if len(out) >= limit {
			break
		}
		if scores[id] <= minScore {
			break
		}
		out = append(out, id)
	}
	return out
}

func filterTopL(ids []relational.TupleID, scores relational.Scores, minScore float64, limit int) []relational.TupleID {
	sorted := make([]relational.TupleID, len(ids))
	copy(sorted, ids)
	sort.Slice(sorted, func(a, b int) bool {
		sa, sb := scores[sorted[a]], scores[sorted[b]]
		if sa != sb {
			return sa > sb
		}
		return sorted[a] < sorted[b]
	})
	return topLFromSorted(sorted, scores, minScore, limit)
}

// GraphSource extracts children by walking the in-memory data graph, the
// fast OS-generation path of Figure 10f ("the OSs are generated much faster
// using the data graph").
type GraphSource struct {
	g        *datagraph.Graph
	scores   relational.DBScores
	accesses int64
}

// NewGraphSource creates a data-graph-backed extraction source.
func NewGraphSource(g *datagraph.Graph, scores relational.DBScores) *GraphSource {
	return &GraphSource{g: g, scores: scores}
}

// DB implements Source.
func (s *GraphSource) DB() *relational.DB { return s.g.DB }

// Scores implements Source.
func (s *GraphSource) Scores() relational.DBScores { return s.scores }

// Accesses implements Source.
func (s *GraphSource) Accesses() int64 { return s.accesses }

// ResetAccesses implements Source.
func (s *GraphSource) ResetAccesses() int64 {
	n := s.accesses
	s.accesses = 0
	return n
}

// Children implements Source.
func (s *GraphSource) Children(gn *schemagraph.Node, parent relational.TupleID) []relational.TupleID {
	s.accesses++
	db := s.g.DB
	parentIdx := db.RelIndex(gn.Parent.Rel)
	switch gn.Step.Kind {
	case schemagraph.StepChildFK:
		et := datagraph.EdgeType{Rel: gn.Rel, FK: gn.Step.FKOrd}
		return s.g.NeighborsAlong(parentIdx, parent, et, false)
	case schemagraph.StepParentFK:
		et := datagraph.EdgeType{Rel: gn.Parent.Rel, FK: gn.Step.FKOrd}
		return s.g.NeighborsAlong(parentIdx, parent, et, true)
	case schemagraph.StepJunction:
		jIdx := db.RelIndex(gn.Step.Junction)
		etIn := datagraph.EdgeType{Rel: gn.Step.Junction, FK: gn.Step.JFKParent}
		etOut := datagraph.EdgeType{Rel: gn.Step.Junction, FK: gn.Step.JFKChild}
		rows := s.g.NeighborsAlong(parentIdx, parent, etIn, false)
		if len(rows) == 0 {
			return nil
		}
		out := make([]relational.TupleID, 0, len(rows))
		for _, row := range rows {
			out = append(out, s.g.NeighborsAlong(jIdx, row, etOut, true)...)
		}
		return out
	default:
		return nil
	}
}

// ChildrenTopL implements Source.
func (s *GraphSource) ChildrenTopL(gn *schemagraph.Node, parent relational.TupleID, minScore float64, limit int) []relational.TupleID {
	ids := s.Children(gn, parent)
	return filterTopL(ids, relScores(s.scores, gn.Rel), minScore, limit)
}
