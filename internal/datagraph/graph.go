// Package datagraph builds and serves the tuple-level data graph of a
// relational database: one node per tuple, one edge per foreign-key pair.
// The paper (§6.3, Fig. 10f) uses exactly such an in-memory graph as an
// index to accelerate OS generation — "data-graph nodes correspond to the
// database tuples and edges to tuples relationships (through their primary
// and foreign keys) ... the data-graph is only an index and does not contain
// actual data as nodes capture only keys and global importance".
//
// The same graph is the substrate for ObjectRank/ValueRank power iteration
// (package rank), which needs typed edges: authority transfer rates are
// declared per schema edge and direction.
package datagraph

import (
	"fmt"

	"sizelos/internal/relational"
)

// NodeID identifies a tuple globally: the relation ordinal (registration
// order in the DB) and the TupleID within that relation.
type NodeID struct {
	Rel   int32
	Tuple relational.TupleID
}

// EdgeType identifies one foreign key in the schema: the relation owning the
// FK and the FK ordinal within it. Each EdgeType yields edges in two
// directions: forward (owner -> referenced, the M:1 direction) and backward
// (referenced -> owner, the 1:M direction).
type EdgeType struct {
	Rel string // relation owning the foreign key
	FK  int    // ordinal in Relation.FKs
}

// String renders the edge type as Rel.column->Ref.
func (e EdgeType) String() string { return fmt.Sprintf("%s.fk%d", e.Rel, e.FK) }

// adjacency holds, for one relation and one incident edge type, the
// CSR-style neighbor lists of every tuple.
type adjacency struct {
	// offsets has len(tuples)+1 entries; neighbors[offsets[i]:offsets[i+1]]
	// are tuple i's neighbors along this edge type and direction.
	offsets   []int32
	neighbors []relational.TupleID
}

// relEdges describes one direction of one edge type as seen from a source
// relation.
type relEdges struct {
	Type     EdgeType
	Forward  bool   // true: source owns the FK (M:1); false: 1:M direction
	Other    string // the relation on the far end
	adj      adjacency
	otherIdx int32 // relation ordinal of Other
}

// Graph is the immutable tuple-level data graph.
type Graph struct {
	DB *relational.DB
	// edges[relOrdinal] lists every incident edge-type direction of that
	// relation, in deterministic schema order.
	edges [][]relEdges
	// counts of nodes per relation, cached.
	sizes []int
}

// Build constructs the data graph from the database's foreign keys. Cost is
// linear in tuples+edges; the experiments report this as the data-graph
// construction time of Fig. 10f.
func Build(db *relational.DB) (*Graph, error) {
	g := &Graph{
		DB:    db,
		edges: make([][]relEdges, len(db.Relations)),
		sizes: make([]int, len(db.Relations)),
	}
	for i, r := range db.Relations {
		g.sizes[i] = r.Len()
	}
	for _, r := range db.Relations {
		src := db.RelIndex(r.Name)
		for fi, fk := range r.FKs {
			ref := db.Relation(fk.Ref)
			if ref == nil {
				return nil, fmt.Errorf("datagraph: %s.%s references unknown relation %s", r.Name, fk.Column, fk.Ref)
			}
			dst := db.RelIndex(fk.Ref)
			et := EdgeType{Rel: r.Name, FK: fi}

			fwd, err := buildForward(r, fi, ref)
			if err != nil {
				return nil, err
			}
			g.edges[src] = append(g.edges[src], relEdges{
				Type: et, Forward: true, Other: fk.Ref, adj: fwd, otherIdx: int32(dst),
			})

			bwd := buildBackward(r, fi, ref)
			g.edges[dst] = append(g.edges[dst], relEdges{
				Type: et, Forward: false, Other: r.Name, adj: bwd, otherIdx: int32(src),
			})
		}
	}
	return g, nil
}

// buildForward maps each live tuple of owner to the single referenced
// tuple. Tombstoned owners get an empty neighbor range — their node stays
// (ids are positional) but is disconnected, so no traversal reaches them.
func buildForward(owner *relational.Relation, fkOrd int, ref *relational.Relation) (adjacency, error) {
	col := owner.ColIndex(owner.FKs[fkOrd].Column)
	n := owner.Len()
	adj := adjacency{
		offsets:   make([]int32, n+1),
		neighbors: make([]relational.TupleID, 0, n),
	}
	for i := 0; i < n; i++ {
		adj.offsets[i] = int32(len(adj.neighbors))
		if owner.Deleted(relational.TupleID(i)) {
			continue
		}
		key := owner.Tuples[i][col].Int
		if id, ok := ref.LookupPK(key); ok {
			adj.neighbors = append(adj.neighbors, id)
		} else {
			return adjacency{}, fmt.Errorf("datagraph: %s tuple %d: dangling FK %s=%d into %s",
				owner.Name, i, owner.FKs[fkOrd].Column, key, ref.Name)
		}
	}
	adj.offsets[n] = int32(len(adj.neighbors))
	return adj, nil
}

// buildBackward maps each tuple of ref to the live owner tuples referencing
// it, in owner insertion order. Tombstoned owners are skipped; tombstoned
// refs collect no edges because their PK-index entry is gone.
func buildBackward(owner *relational.Relation, fkOrd int, ref *relational.Relation) adjacency {
	col := owner.ColIndex(owner.FKs[fkOrd].Column)
	n := ref.Len()
	counts := make([]int32, n)
	for i := 0; i < owner.Len(); i++ {
		if owner.Deleted(relational.TupleID(i)) {
			continue
		}
		key := owner.Tuples[i][col].Int
		if id, ok := ref.LookupPK(key); ok {
			counts[id]++
		}
	}
	adj := adjacency{offsets: make([]int32, n+1)}
	total := int32(0)
	for i := 0; i < n; i++ {
		adj.offsets[i] = total
		total += counts[i]
	}
	adj.offsets[n] = total
	adj.neighbors = make([]relational.TupleID, total)
	fill := make([]int32, n)
	copy(fill, adj.offsets[:n])
	for i := 0; i < owner.Len(); i++ {
		if owner.Deleted(relational.TupleID(i)) {
			continue
		}
		key := owner.Tuples[i][col].Int
		if id, ok := ref.LookupPK(key); ok {
			adj.neighbors[fill[id]] = relational.TupleID(i)
			fill[id]++
		}
	}
	return adj
}

// NumNodes returns the total node count.
func (g *Graph) NumNodes() int {
	n := 0
	for _, s := range g.sizes {
		n += s
	}
	return n
}

// RelSize returns the node count of relation ordinal rel.
func (g *Graph) RelSize(rel int) int { return g.sizes[rel] }

// EdgeDirs returns the incident edge-type directions of relation ordinal
// rel, in deterministic order.
func (g *Graph) EdgeDirs(rel int) []EdgeDir {
	dirs := make([]EdgeDir, len(g.edges[rel]))
	for i := range g.edges[rel] {
		e := &g.edges[rel][i]
		dirs[i] = EdgeDir{Type: e.Type, Forward: e.Forward, Other: e.Other, OtherIdx: int(e.otherIdx)}
	}
	return dirs
}

// EdgeDir is the public view of one incident edge-type direction.
type EdgeDir struct {
	Type     EdgeType
	Forward  bool
	Other    string
	OtherIdx int
}

// Neighbors returns the tuples adjacent to (rel, t) along the dir-th
// incident edge direction of rel. The returned slice aliases internal
// storage and must not be modified.
func (g *Graph) Neighbors(rel int, t relational.TupleID, dir int) []relational.TupleID {
	adj := &g.edges[rel][dir].adj
	return adj.neighbors[adj.offsets[t]:adj.offsets[t+1]]
}

// Degree returns the out-degree of (rel, t) along incident direction dir.
func (g *Graph) Degree(rel int, t relational.TupleID, dir int) int {
	adj := &g.edges[rel][dir].adj
	return int(adj.offsets[t+1] - adj.offsets[t])
}

// NeighborsAlong returns neighbors along a specific edge type and direction,
// or nil if that edge direction is not incident to rel.
func (g *Graph) NeighborsAlong(rel int, t relational.TupleID, et EdgeType, forward bool) []relational.TupleID {
	for i := range g.edges[rel] {
		e := &g.edges[rel][i]
		if e.Type == et && e.Forward == forward {
			return g.Neighbors(rel, t, i)
		}
	}
	return nil
}
