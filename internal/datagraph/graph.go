package datagraph

import (
	"fmt"
	"sort"

	"sizelos/internal/relational"
)

// NodeID identifies a tuple globally: the relation ordinal (registration
// order in the DB) and the TupleID within that relation.
type NodeID struct {
	Rel   int32
	Tuple relational.TupleID
}

// EdgeType identifies one foreign key in the schema: the relation owning the
// FK and the FK ordinal within it. Each EdgeType yields edges in two
// directions: forward (owner -> referenced, the M:1 direction) and backward
// (referenced -> owner, the 1:M direction).
type EdgeType struct {
	Rel string // relation owning the foreign key
	FK  int    // ordinal in Relation.FKs
}

// String renders the edge type as Rel.column->Ref.
func (e EdgeType) String() string { return fmt.Sprintf("%s.fk%d", e.Rel, e.FK) }

// adjacency holds, for one relation and one incident edge type, the
// CSR-style neighbor lists of every tuple, plus a mutation overlay: Apply
// splices per-tuple deltas into patch instead of rewriting the packed
// arrays, so a small batch costs work proportional to the tuples it
// touches, not to the graph.
type adjacency struct {
	// offsets has len(tuples)+1 entries (as of the last full build);
	// neighbors[offsets[i]:offsets[i+1]] are tuple i's neighbors along this
	// edge type and direction, unless patch overrides tuple i.
	offsets   []int32
	neighbors []relational.TupleID
	// patch maps a tuple to its current neighbor list when it diverged from
	// the packed arrays — tuples inserted after the build (beyond offsets),
	// tombstoned tuples (empty list), and live tuples whose neighborhood a
	// mutation changed. A present key with a nil value means "no neighbors".
	patch map[relational.TupleID][]relational.TupleID
}

// list returns t's current neighbor list: the overlay entry if one exists,
// the packed CSR range if t predates the last build, empty otherwise
// (tuples inserted since the build start with no edges until patched).
func (a *adjacency) list(t relational.TupleID) []relational.TupleID {
	if a.patch != nil {
		if l, ok := a.patch[t]; ok {
			return l
		}
	}
	if int(t)+1 < len(a.offsets) {
		return a.neighbors[a.offsets[t]:a.offsets[t+1]]
	}
	return nil
}

// override installs list as t's neighbor list in the overlay (nil = none).
func (a *adjacency) override(t relational.TupleID, list []relational.TupleID) {
	if a.patch == nil {
		a.patch = make(map[relational.TupleID][]relational.TupleID)
	}
	a.patch[t] = list
}

// owned returns t's overlay list when one exists. Every overlay slice is
// allocated by this adjacency (never aliased into the packed arrays), so an
// owned list may be mutated in place — the caller (the engine, under its
// write lock) has exclusive access, and Neighbors results are documented
// valid only until the next Apply. Mutating in place keeps a hot tuple's
// repeated edge changes linear instead of copying its whole list per splice.
func (a *adjacency) owned(t relational.TupleID) ([]relational.TupleID, bool) {
	if a.patch == nil {
		return nil, false
	}
	l, ok := a.patch[t]
	return l, ok
}

// retract removes id from t's ascending neighbor list — in place when the
// list is already an owned overlay copy, copy-on-write off the packed
// arrays otherwise; a no-op when id is absent (the far end may already have
// been cleared wholesale by its own delete).
func (a *adjacency) retract(t, id relational.TupleID) {
	if cur, ok := a.owned(t); ok {
		i := sort.Search(len(cur), func(i int) bool { return cur[i] >= id })
		if i == len(cur) || cur[i] != id {
			return
		}
		a.patch[t] = append(cur[:i], cur[i+1:]...)
		return
	}
	cur := a.list(t)
	i := sort.Search(len(cur), func(i int) bool { return cur[i] >= id })
	if i == len(cur) || cur[i] != id {
		return
	}
	out := make([]relational.TupleID, 0, len(cur)-1)
	out = append(out, cur[:i]...)
	out = append(out, cur[i+1:]...)
	a.override(t, out)
}

// extend appends id to t's neighbor list — in place when the list is
// already an owned overlay copy, copy-on-write off the packed arrays
// otherwise. Callers append in ascending id order (fresh inserts always
// carry the largest ids), which keeps the list in the owner-insertion order
// a full build produces.
func (a *adjacency) extend(t, id relational.TupleID) {
	if cur, ok := a.owned(t); ok {
		a.patch[t] = append(cur, id)
		return
	}
	cur := a.list(t)
	out := make([]relational.TupleID, 0, len(cur)+1)
	out = append(out, cur...)
	out = append(out, id)
	a.override(t, out)
}

// relEdges describes one direction of one edge type as seen from a source
// relation.
type relEdges struct {
	Type     EdgeType
	Forward  bool   // true: source owns the FK (M:1); false: 1:M direction
	Other    string // the relation on the far end
	adj      adjacency
	otherIdx int32 // relation ordinal of Other
}

// Graph is the tuple-level data graph. Build constructs it from scratch;
// Apply folds a committed mutation batch in incrementally. Reads and
// mutations are not synchronized here — the engine serializes Apply against
// traversals under its write lock.
type Graph struct {
	DB *relational.DB
	// edges[relOrdinal] lists every incident edge-type direction of that
	// relation, in deterministic schema order.
	edges [][]relEdges
	// counts of nodes per relation, cached.
	sizes []int
}

// Build constructs the data graph from the database's foreign keys. Cost is
// linear in tuples+edges; the experiments report this as the data-graph
// construction time of Fig. 10f.
func Build(db *relational.DB) (*Graph, error) {
	g := &Graph{
		DB:    db,
		edges: make([][]relEdges, len(db.Relations)),
		sizes: make([]int, len(db.Relations)),
	}
	for i, r := range db.Relations {
		g.sizes[i] = r.Len()
	}
	for _, r := range db.Relations {
		src := db.RelIndex(r.Name)
		for fi, fk := range r.FKs {
			ref := db.Relation(fk.Ref)
			if ref == nil {
				return nil, fmt.Errorf("datagraph: %s.%s references unknown relation %s", r.Name, fk.Column, fk.Ref)
			}
			dst := db.RelIndex(fk.Ref)
			et := EdgeType{Rel: r.Name, FK: fi}

			fwd, err := buildForward(r, fi, ref)
			if err != nil {
				return nil, err
			}
			g.edges[src] = append(g.edges[src], relEdges{
				Type: et, Forward: true, Other: fk.Ref, adj: fwd, otherIdx: int32(dst),
			})

			bwd := buildBackward(r, fi, ref)
			g.edges[dst] = append(g.edges[dst], relEdges{
				Type: et, Forward: false, Other: r.Name, adj: bwd, otherIdx: int32(src),
			})
		}
	}
	return g, nil
}

// buildForward maps each live tuple of owner to the single referenced
// tuple. Tombstoned owners get an empty neighbor range — their node stays
// (ids are positional) but is disconnected, so no traversal reaches them.
func buildForward(owner *relational.Relation, fkOrd int, ref *relational.Relation) (adjacency, error) {
	col := owner.ColIndex(owner.FKs[fkOrd].Column)
	n := owner.Len()
	adj := adjacency{
		offsets:   make([]int32, n+1),
		neighbors: make([]relational.TupleID, 0, n),
	}
	for i := 0; i < n; i++ {
		adj.offsets[i] = int32(len(adj.neighbors))
		if owner.Deleted(relational.TupleID(i)) {
			continue
		}
		key := owner.Tuples[i][col].Int
		if id, ok := ref.LookupPK(key); ok {
			adj.neighbors = append(adj.neighbors, id)
		} else {
			return adjacency{}, fmt.Errorf("datagraph: %s tuple %d: dangling FK %s=%d into %s",
				owner.Name, i, owner.FKs[fkOrd].Column, key, ref.Name)
		}
	}
	adj.offsets[n] = int32(len(adj.neighbors))
	return adj, nil
}

// buildBackward maps each tuple of ref to the live owner tuples referencing
// it, in owner insertion order. Tombstoned owners are skipped; tombstoned
// refs collect no edges because their PK-index entry is gone.
func buildBackward(owner *relational.Relation, fkOrd int, ref *relational.Relation) adjacency {
	col := owner.ColIndex(owner.FKs[fkOrd].Column)
	n := ref.Len()
	counts := make([]int32, n)
	for i := 0; i < owner.Len(); i++ {
		if owner.Deleted(relational.TupleID(i)) {
			continue
		}
		key := owner.Tuples[i][col].Int
		if id, ok := ref.LookupPK(key); ok {
			counts[id]++
		}
	}
	adj := adjacency{offsets: make([]int32, n+1)}
	total := int32(0)
	for i := 0; i < n; i++ {
		adj.offsets[i] = total
		total += counts[i]
	}
	adj.offsets[n] = total
	adj.neighbors = make([]relational.TupleID, total)
	fill := make([]int32, n)
	copy(fill, adj.offsets[:n])
	for i := 0; i < owner.Len(); i++ {
		if owner.Deleted(relational.TupleID(i)) {
			continue
		}
		key := owner.Tuples[i][col].Int
		if id, ok := ref.LookupPK(key); ok {
			adj.neighbors[fill[id]] = relational.TupleID(i)
			fill[id]++
		}
	}
	return adj
}

// NumNodes returns the total node count.
func (g *Graph) NumNodes() int {
	n := 0
	for _, s := range g.sizes {
		n += s
	}
	return n
}

// RelSize returns the node count of relation ordinal rel.
func (g *Graph) RelSize(rel int) int { return g.sizes[rel] }

// EdgeDirs returns the incident edge-type directions of relation ordinal
// rel, in deterministic order.
func (g *Graph) EdgeDirs(rel int) []EdgeDir {
	dirs := make([]EdgeDir, len(g.edges[rel]))
	for i := range g.edges[rel] {
		e := &g.edges[rel][i]
		dirs[i] = EdgeDir{Type: e.Type, Forward: e.Forward, Other: e.Other, OtherIdx: int(e.otherIdx)}
	}
	return dirs
}

// EdgeDir is the public view of one incident edge-type direction.
type EdgeDir struct {
	Type     EdgeType
	Forward  bool
	Other    string
	OtherIdx int
}

// Neighbors returns the tuples adjacent to (rel, t) along the dir-th
// incident edge direction of rel. The returned slice aliases internal
// storage and must not be modified; it stays valid until the next Apply.
func (g *Graph) Neighbors(rel int, t relational.TupleID, dir int) []relational.TupleID {
	return g.edges[rel][dir].adj.list(t)
}

// Degree returns the out-degree of (rel, t) along incident direction dir.
func (g *Graph) Degree(rel int, t relational.TupleID, dir int) int {
	return len(g.edges[rel][dir].adj.list(t))
}

// NeighborsAlong returns neighbors along a specific edge type and direction,
// or nil if that edge direction is not incident to rel.
func (g *Graph) NeighborsAlong(rel int, t relational.TupleID, et EdgeType, forward bool) []relational.TupleID {
	for i := range g.edges[rel] {
		e := &g.edges[rel][i]
		if e.Type == et && e.Forward == forward {
			return g.Neighbors(rel, t, i)
		}
	}
	return nil
}
