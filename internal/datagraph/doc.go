// Package datagraph builds and serves the tuple-level data graph of a
// relational database: one node per tuple, one edge per foreign-key pair.
// The paper (§6.3, Fig. 10f) uses exactly such an in-memory graph as an
// index to accelerate OS generation — "data-graph nodes correspond to the
// database tuples and edges to tuples relationships (through their primary
// and foreign keys) ... the data-graph is only an index and does not contain
// actual data as nodes capture only keys and global importance".
//
// The same graph is the substrate for ObjectRank/ValueRank power iteration
// (package rank), which needs typed edges: authority transfer rates are
// declared per schema edge and direction.
//
// Build constructs the graph from scratch; Graph.Apply folds a committed
// mutation batch in incrementally by splicing per-tuple deltas into a patch
// overlay over the packed CSR arrays, in work proportional to the tuples
// touched.
//
// # Invariants
//
//   - Every adjacency read goes through list() (equivalently, the public
//     Neighbors/Degree/NeighborsAlong). Never index the packed offsets
//     directly: tuples inserted after the last full build live only in the
//     overlay, beyond the packed arrays, and tombstoned or re-spliced
//     tuples are overridden by it.
//   - Apply requires the batch to be already committed to the graph's
//     database — it reads the post-commit tombstone flags, the retained
//     content of tombstoned slots (to retract mirror edges), and the PK
//     index — and the per-relation id lists must be ascending: exactly the
//     relational.BatchResult contract.
//   - Overlay slices are owned by the adjacency and may be mutated in
//     place by a later Apply. Neighbors results are valid only until the
//     next Apply; callers that retain a list must copy it.
//   - After any Apply the graph is edge-exact with a from-scratch Build
//     over the mutated store — same relation sizes, same incident
//     directions, same neighbor list on every (relation, tuple, direction).
//     EquivalentTo is that relation; the randomized mutation-equivalence
//     harness (mutation_equiv_test.go at the repo root) asserts it after
//     every seeded batch.
//   - Node ids are positional and stable across Apply: a tombstoned tuple
//     keeps its (disconnected) node, an inserted tuple takes a fresh id
//     larger than every existing id of its relation. Only a physical
//     compaction (which rebuilds the graph) moves ids.
package datagraph
