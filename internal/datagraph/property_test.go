package datagraph

import (
	"fmt"
	"math/rand"
	"testing"

	"sizelos/internal/relational"
)

// randomLinkedDB builds a parent relation and a child relation with n
// children pointing at random parents.
func randomLinkedDB(t *testing.T, r *rand.Rand, parents, children int) *relational.DB {
	t.Helper()
	db := relational.NewDB("rand")
	p := relational.MustNewRelation("P", []relational.Column{{Name: "id", Kind: relational.KindInt}}, "id", nil)
	c := relational.MustNewRelation("C",
		[]relational.Column{
			{Name: "id", Kind: relational.KindInt},
			{Name: "p", Kind: relational.KindInt},
		}, "id", []relational.ForeignKey{{Column: "p", Ref: "P"}})
	db.MustAddRelation(p)
	db.MustAddRelation(c)
	for i := 0; i < parents; i++ {
		p.MustInsert(relational.Tuple{relational.IntVal(int64(i + 1))})
	}
	for i := 0; i < children; i++ {
		c.MustInsert(relational.Tuple{
			relational.IntVal(int64(i + 1)),
			relational.IntVal(int64(r.Intn(parents) + 1)),
		})
	}
	return db
}

// Property: forward and backward adjacency are mutually consistent — v is
// u's forward neighbor iff u is v's backward neighbor, and edge counts
// agree.
func TestForwardBackwardSymmetry(t *testing.T) {
	r := rand.New(rand.NewSource(2718))
	for trial := 0; trial < 25; trial++ {
		parents := 1 + r.Intn(20)
		children := r.Intn(60)
		db := randomLinkedDB(t, r, parents, children)
		g, err := Build(db)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		cIdx, pIdx := db.RelIndex("C"), db.RelIndex("P")
		et := EdgeType{Rel: "C", FK: 0}

		fwdEdges := map[string]bool{}
		fwdCount := 0
		for ct := 0; ct < children; ct++ {
			for _, pt := range g.NeighborsAlong(cIdx, relational.TupleID(ct), et, true) {
				fwdEdges[fmt.Sprintf("%d-%d", ct, pt)] = true
				fwdCount++
			}
		}
		bwdCount := 0
		for pt := 0; pt < parents; pt++ {
			for _, ct := range g.NeighborsAlong(pIdx, relational.TupleID(pt), et, false) {
				if !fwdEdges[fmt.Sprintf("%d-%d", ct, pt)] {
					t.Fatalf("trial %d: backward edge %d<-%d missing forward counterpart", trial, ct, pt)
				}
				bwdCount++
			}
		}
		if fwdCount != bwdCount || fwdCount != children {
			t.Fatalf("trial %d: forward %d, backward %d, want %d", trial, fwdCount, bwdCount, children)
		}
	}
}

// Property: degrees sum to edge counts per direction.
func TestDegreeSums(t *testing.T) {
	r := rand.New(rand.NewSource(31415))
	db := randomLinkedDB(t, r, 7, 40)
	g, err := Build(db)
	if err != nil {
		t.Fatal(err)
	}
	pIdx := db.RelIndex("P")
	total := 0
	for pt := 0; pt < 7; pt++ {
		total += g.Degree(pIdx, relational.TupleID(pt), 0)
	}
	if total != 40 {
		t.Fatalf("degree sum %d, want 40", total)
	}
}
