package datagraph

// Incremental maintenance: Apply splices a committed mutation batch's FK
// edges into the graph instead of rebuilding the CSR arrays. The relational
// layer's stable TupleID slots are what make this sound — a tombstoned
// tuple keeps its slot (and its content, so its outgoing FK values can
// still be read to retract the mirror edges) and an inserted tuple always
// takes a fresh slot larger than every existing id of its relation.
//
// After Apply the graph answers every Neighbors/Degree query exactly as a
// from-scratch Build over the mutated database would; the randomized
// mutation-equivalence harness (TestMutationEquivalence) asserts this edge
// for edge. The overlay grows with the number of touched tuples, never with
// database size; the engine folds it away when it rebuilds on compaction.

import (
	"fmt"
	"sort"

	"sizelos/internal/relational"
)

// Apply folds one committed relational batch into the graph in place. The
// batch must already be applied to g's database (Apply reads the tombstone
// flags, retained slot contents and PK index of the post-commit state), and
// the per-relation id lists must be ascending — exactly the contract of
// relational.BatchResult.
//
// Cost is O(Δ) list splices for a batch touching Δ tuples: each deleted
// tuple clears its own lists and retracts itself from its FK targets'
// mirror lists; each inserted tuple gains a single-target list per FK and
// appends itself to the mirror lists. An error means the batch references a
// relation the graph was not built over; the graph is then unspecified and
// the caller must rebuild.
func (g *Graph) Apply(res relational.BatchResult) error {
	db := g.DB
	// Deterministic relation order keeps the splice sequence reproducible
	// (map iteration order must not leak into patch allocation patterns).
	for _, rel := range sortedKeys(res.Deleted) {
		ri := db.RelIndex(rel)
		if ri < 0 {
			return fmt.Errorf("datagraph: apply: unknown relation %q", rel)
		}
		r := db.Relations[ri]
		for _, d := range res.Deleted[rel] {
			// The tuple leaves every incident direction wholesale: its
			// forward lists (it no longer references anyone), and its
			// backward lists (referential integrity guarantees every owner
			// that pointed at it is deleted too — those owners retract their
			// own forward edges below, and a retract against a cleared list
			// is a no-op). Already-empty directions need no patch entry:
			// skipping them keeps Patched() counting real splices, so the
			// overlay-fold heuristic doesn't fire early on delete churn over
			// sparsely connected tuples.
			for di := range g.edges[ri] {
				if adj := &g.edges[ri][di].adj; len(adj.list(d)) > 0 {
					adj.override(d, nil)
				}
			}
			// Retract the mirror edge from each still-live FK target's
			// backward list. The tombstoned slot retains its content, so the
			// FK values are still readable; a target deleted in the same
			// batch fails the PK lookup and needs nothing (its lists were —
			// or will be — cleared wholesale). A target deleted and
			// re-inserted under the same PK resolves to the fresh slot,
			// where the retract is a harmless no-op.
			for fi, fk := range r.FKs {
				key := r.Tuples[d][r.ColIndex(fk.Column)].Int
				ref := db.Relation(fk.Ref)
				target, ok := ref.LookupPK(key)
				if !ok {
					continue
				}
				mi, err := g.mirrorDir(db.RelIndex(fk.Ref), rel, fi)
				if err != nil {
					return err
				}
				g.edges[db.RelIndex(fk.Ref)][mi].adj.retract(target, d)
			}
		}
	}
	for _, rel := range sortedKeys(res.Inserted) {
		ri := db.RelIndex(rel)
		if ri < 0 {
			return fmt.Errorf("datagraph: apply: unknown relation %q", rel)
		}
		r := db.Relations[ri]
		for _, id := range res.Inserted[rel] {
			for fi, fk := range r.FKs {
				key := r.Tuples[id][r.ColIndex(fk.Column)].Int
				ref := db.Relation(fk.Ref)
				target, ok := ref.LookupPK(key)
				if !ok {
					// Unreachable after a committed batch: inserts passed the
					// FK check and nothing deleted the target afterwards
					// (deletes precede inserts within a batch).
					return fmt.Errorf("datagraph: apply: %s tuple %d: dangling FK %s=%d into %s",
						rel, id, fk.Column, key, fk.Ref)
				}
				fwd, err := g.forwardDir(ri, rel, fi)
				if err != nil {
					return err
				}
				g.edges[ri][fwd].adj.override(id, []relational.TupleID{target})
				mi, err := g.mirrorDir(db.RelIndex(fk.Ref), rel, fi)
				if err != nil {
					return err
				}
				// Ascending insert ids appended in order keep the backward
				// list in owner-insertion order, matching buildBackward.
				g.edges[db.RelIndex(fk.Ref)][mi].adj.extend(target, id)
			}
		}
		g.sizes[ri] = r.Len()
	}
	return nil
}

// forwardDir locates the owner-side (M:1) direction of FK fi of rel among
// relation ordinal ri's incident directions.
func (g *Graph) forwardDir(ri int, rel string, fi int) (int, error) {
	return g.findDir(ri, rel, fi, true)
}

// mirrorDir locates the referenced-side (1:M) direction of FK fi of rel
// among relation ordinal refIdx's incident directions.
func (g *Graph) mirrorDir(refIdx int, rel string, fi int) (int, error) {
	return g.findDir(refIdx, rel, fi, false)
}

func (g *Graph) findDir(ri int, rel string, fi int, forward bool) (int, error) {
	et := EdgeType{Rel: rel, FK: fi}
	for di := range g.edges[ri] {
		e := &g.edges[ri][di]
		if e.Type == et && e.Forward == forward {
			return di, nil
		}
	}
	return 0, fmt.Errorf("datagraph: apply: edge %v (forward=%v) not incident to relation ordinal %d", et, forward, ri)
}

// EquivalentTo reports the first edge-level difference between g and other
// ("" when none): same relation sizes, same incident directions, and the
// same neighbor list on every (relation, tuple, direction). It is the
// "edge-exact" relation the mutation-equivalence harness asserts between an
// incrementally maintained graph and a from-scratch rebuild.
func (g *Graph) EquivalentTo(other *Graph) string {
	if len(g.edges) != len(other.edges) {
		return fmt.Sprintf("relation count %d vs %d", len(g.edges), len(other.edges))
	}
	for ri := range g.edges {
		if g.RelSize(ri) != other.RelSize(ri) {
			return fmt.Sprintf("relation %d size %d vs %d", ri, g.RelSize(ri), other.RelSize(ri))
		}
		if len(g.edges[ri]) != len(other.edges[ri]) {
			return fmt.Sprintf("relation %d has %d edge dirs vs %d", ri, len(g.edges[ri]), len(other.edges[ri]))
		}
		for di := range g.edges[ri] {
			a, b := &g.edges[ri][di], &other.edges[ri][di]
			if a.Type != b.Type || a.Forward != b.Forward || a.otherIdx != b.otherIdx {
				return fmt.Sprintf("relation %d dir %d: %v/%v vs %v/%v", ri, di, a.Type, a.Forward, b.Type, b.Forward)
			}
			for t := 0; t < g.RelSize(ri); t++ {
				ga := g.Neighbors(ri, relational.TupleID(t), di)
				gb := other.Neighbors(ri, relational.TupleID(t), di)
				if len(ga) == 0 && len(gb) == 0 {
					continue
				}
				if !tupleIDsEqual(ga, gb) {
					return fmt.Sprintf("relation %d tuple %d dir %d (%v fwd=%v): %v vs %v",
						ri, t, di, a.Type, a.Forward, ga, gb)
				}
			}
		}
	}
	return ""
}

func tupleIDsEqual(a, b []relational.TupleID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Patched reports how many per-tuple overlay entries the graph currently
// carries across all adjacencies — the memory the incremental path has
// accumulated since the last full build. The engine reads it to decide when
// folding the overlay into fresh CSR arrays (a rebuild) pays for itself.
func (g *Graph) Patched() int {
	n := 0
	for ri := range g.edges {
		for di := range g.edges[ri] {
			n += len(g.edges[ri][di].adj.patch)
		}
	}
	return n
}

func sortedKeys(m map[string][]relational.TupleID) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
