package datagraph

import (
	"reflect"
	"testing"

	"sizelos/internal/relational"
)

// tinyDBLP builds a miniature Author/Writes/Paper database:
//
//	a1 writes p1, p2;  a2 writes p1;  p2 cites p1.
func tinyDBLP(t *testing.T) *relational.DB {
	t.Helper()
	db := relational.NewDB("tiny")
	author := relational.MustNewRelation("Author",
		[]relational.Column{
			{Name: "id", Kind: relational.KindInt},
			{Name: "name", Kind: relational.KindString},
		}, "id", nil)
	paper := relational.MustNewRelation("Paper",
		[]relational.Column{
			{Name: "id", Kind: relational.KindInt},
			{Name: "title", Kind: relational.KindString},
		}, "id", nil)
	writes := relational.MustNewRelation("Writes",
		[]relational.Column{
			{Name: "id", Kind: relational.KindInt},
			{Name: "paper", Kind: relational.KindInt},
			{Name: "author", Kind: relational.KindInt},
		}, "id", []relational.ForeignKey{
			{Column: "paper", Ref: "Paper"},
			{Column: "author", Ref: "Author"},
		})
	cites := relational.MustNewRelation("Cites",
		[]relational.Column{
			{Name: "id", Kind: relational.KindInt},
			{Name: "citing", Kind: relational.KindInt},
			{Name: "cited", Kind: relational.KindInt},
		}, "id", []relational.ForeignKey{
			{Column: "citing", Ref: "Paper"},
			{Column: "cited", Ref: "Paper"},
		})
	db.MustAddRelation(author)
	db.MustAddRelation(paper)
	db.MustAddRelation(writes)
	db.MustAddRelation(cites)

	author.MustInsert(relational.Tuple{relational.IntVal(1), relational.StrVal("a1")})
	author.MustInsert(relational.Tuple{relational.IntVal(2), relational.StrVal("a2")})
	paper.MustInsert(relational.Tuple{relational.IntVal(1), relational.StrVal("p1")})
	paper.MustInsert(relational.Tuple{relational.IntVal(2), relational.StrVal("p2")})
	writes.MustInsert(relational.Tuple{relational.IntVal(1), relational.IntVal(1), relational.IntVal(1)})
	writes.MustInsert(relational.Tuple{relational.IntVal(2), relational.IntVal(2), relational.IntVal(1)})
	writes.MustInsert(relational.Tuple{relational.IntVal(3), relational.IntVal(1), relational.IntVal(2)})
	cites.MustInsert(relational.Tuple{relational.IntVal(1), relational.IntVal(2), relational.IntVal(1)})
	return db
}

func TestBuildCounts(t *testing.T) {
	db := tinyDBLP(t)
	g, err := Build(db)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if got := g.NumNodes(); got != 8 {
		t.Errorf("NumNodes = %d, want 8", got)
	}
	if got := g.RelSize(db.RelIndex("Writes")); got != 3 {
		t.Errorf("RelSize(Writes) = %d, want 3", got)
	}
}

func TestEdgeDirs(t *testing.T) {
	db := tinyDBLP(t)
	g, err := Build(db)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	// Paper is referenced by Writes.paper, Cites.citing, Cites.cited: three
	// backward directions.
	dirs := g.EdgeDirs(db.RelIndex("Paper"))
	if len(dirs) != 3 {
		t.Fatalf("Paper has %d incident dirs, want 3: %+v", len(dirs), dirs)
	}
	for _, d := range dirs {
		if d.Forward {
			t.Errorf("Paper should only have backward dirs, got %+v", d)
		}
	}
	// Writes owns two FKs: two forward directions.
	dirs = g.EdgeDirs(db.RelIndex("Writes"))
	if len(dirs) != 2 {
		t.Fatalf("Writes has %d incident dirs, want 2", len(dirs))
	}
	for _, d := range dirs {
		if !d.Forward {
			t.Errorf("Writes should only have forward dirs, got %+v", d)
		}
	}
}

func TestNeighbors(t *testing.T) {
	db := tinyDBLP(t)
	g, err := Build(db)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	// Author a1 (tuple 0) -> Writes backward: rows 0 and 1.
	aIdx := db.RelIndex("Author")
	got := g.NeighborsAlong(aIdx, 0, EdgeType{Rel: "Writes", FK: 1}, false)
	want := []relational.TupleID{0, 1}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("a1 writes-backward = %v, want %v", got, want)
	}
	// Writes row 0 -> Paper forward: paper p1 (tuple 0).
	wIdx := db.RelIndex("Writes")
	got = g.NeighborsAlong(wIdx, 0, EdgeType{Rel: "Writes", FK: 0}, true)
	if !reflect.DeepEqual(got, []relational.TupleID{0}) {
		t.Errorf("writes0 paper-forward = %v, want [0]", got)
	}
	// Paper p1 cited by p2 via Cites: backward along Cites.cited.
	pIdx := db.RelIndex("Paper")
	got = g.NeighborsAlong(pIdx, 0, EdgeType{Rel: "Cites", FK: 1}, false)
	if !reflect.DeepEqual(got, []relational.TupleID{0}) {
		t.Errorf("p1 cited-backward = %v, want [0] (Cites row 0)", got)
	}
	// Missing edge direction.
	if got := g.NeighborsAlong(pIdx, 0, EdgeType{Rel: "Nope", FK: 0}, true); got != nil {
		t.Errorf("missing edge dir = %v, want nil", got)
	}
}

func TestDegree(t *testing.T) {
	db := tinyDBLP(t)
	g, err := Build(db)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	aIdx := db.RelIndex("Author")
	dirs := g.EdgeDirs(aIdx)
	if len(dirs) != 1 {
		t.Fatalf("Author dirs = %d, want 1", len(dirs))
	}
	if got := g.Degree(aIdx, 0, 0); got != 2 {
		t.Errorf("Degree(a1) = %d, want 2", got)
	}
	if got := g.Degree(aIdx, 1, 0); got != 1 {
		t.Errorf("Degree(a2) = %d, want 1", got)
	}
}

func TestBuildDanglingFK(t *testing.T) {
	db := relational.NewDB("bad")
	p := relational.MustNewRelation("P", []relational.Column{{Name: "id", Kind: relational.KindInt}}, "id", nil)
	c := relational.MustNewRelation("C",
		[]relational.Column{{Name: "id", Kind: relational.KindInt}, {Name: "p", Kind: relational.KindInt}},
		"id", []relational.ForeignKey{{Column: "p", Ref: "P"}})
	db.MustAddRelation(p)
	db.MustAddRelation(c)
	c.MustInsert(relational.Tuple{relational.IntVal(1), relational.IntVal(99)})
	if _, err := Build(db); err == nil {
		t.Fatal("Build accepted dangling FK")
	}
}

func TestBuildUnknownRef(t *testing.T) {
	db := relational.NewDB("bad")
	c := relational.MustNewRelation("C",
		[]relational.Column{{Name: "id", Kind: relational.KindInt}, {Name: "p", Kind: relational.KindInt}},
		"id", []relational.ForeignKey{{Column: "p", Ref: "Ghost"}})
	db.MustAddRelation(c)
	if _, err := Build(db); err == nil {
		t.Fatal("Build accepted unknown FK target")
	}
}

func TestEdgeTypeString(t *testing.T) {
	et := EdgeType{Rel: "Writes", FK: 1}
	if got := et.String(); got != "Writes.fk1" {
		t.Errorf("String() = %q", got)
	}
}
