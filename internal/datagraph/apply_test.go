package datagraph

import (
	"testing"

	"sizelos/internal/relational"
)

// assertGraphsEqual compares g against a from-scratch rebuild over the same
// database, edge for edge: every relation, every incident direction, every
// tuple slot. This is the package-level notion of "edge-exact" the
// engine-level randomized harness reuses through EquivalentTo.
func assertGraphsEqual(t *testing.T, db *relational.DB, g *Graph) {
	t.Helper()
	want, err := Build(db)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if msg := g.EquivalentTo(want); msg != "" {
		t.Fatalf("incremental graph diverged from rebuild: %s", msg)
	}
}

func apply(t *testing.T, db *relational.DB, g *Graph, b relational.Batch) relational.BatchResult {
	t.Helper()
	res, err := db.Apply(b)
	if err != nil {
		t.Fatalf("DB.Apply: %v", err)
	}
	if err := g.Apply(res); err != nil {
		t.Fatalf("Graph.Apply: %v", err)
	}
	return res
}

// TestApplyInsertSplicesEdges inserts an author, a paper and the junction
// row linking them, and checks the graph matches a rebuild without one.
func TestApplyInsertSplicesEdges(t *testing.T) {
	db := tinyDBLP(t)
	g, err := Build(db)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	apply(t, db, g, relational.Batch{Inserts: []relational.InsertOp{
		{Rel: "Author", Tuple: relational.Tuple{relational.IntVal(3), relational.StrVal("a3")}},
		{Rel: "Paper", Tuple: relational.Tuple{relational.IntVal(3), relational.StrVal("p3")}},
		{Rel: "Writes", Tuple: relational.Tuple{relational.IntVal(4), relational.IntVal(3), relational.IntVal(3)}},
		{Rel: "Cites", Tuple: relational.Tuple{relational.IntVal(2), relational.IntVal(3), relational.IntVal(1)}},
	}})
	assertGraphsEqual(t, db, g)
	// The new paper's backward Writes list reaches the new junction row.
	pi := db.RelIndex("Paper")
	nb := g.NeighborsAlong(pi, 2, EdgeType{Rel: "Writes", FK: 0}, false)
	if len(nb) != 1 || nb[0] != 3 {
		t.Fatalf("new paper's Writes backlist = %v, want [3]", nb)
	}
	if g.NumNodes() != 12 {
		t.Fatalf("NumNodes = %d, want 12", g.NumNodes())
	}
}

// TestApplyDeleteClearsBothDirections deletes a junction row and checks the
// paper and author both forget it, then cascades the paper away entirely.
func TestApplyDeleteClearsBothDirections(t *testing.T) {
	db := tinyDBLP(t)
	g, err := Build(db)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	// Delete writes row 2 (a1 writes p2), then the citation into p1, then
	// paper p2 itself (now unreferenced).
	apply(t, db, g, relational.Batch{Deletes: []relational.DeleteOp{
		{Rel: "Writes", PK: 2},
		{Rel: "Cites", PK: 1},
		{Rel: "Paper", PK: 2},
	}})
	assertGraphsEqual(t, db, g)
	wi := db.RelIndex("Writes")
	if nb := g.Neighbors(wi, 1, 0); len(nb) != 0 {
		t.Fatalf("deleted junction row keeps neighbors %v", nb)
	}
}

// TestApplyDeleteThenReinsertSamePK reuses a primary key in one batch: the
// old slot must stay disconnected, the fresh slot must carry the edges.
func TestApplyDeleteThenReinsertSamePK(t *testing.T) {
	db := tinyDBLP(t)
	g, err := Build(db)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	apply(t, db, g, relational.Batch{
		Deletes: []relational.DeleteOp{{Rel: "Cites", PK: 1}},
		Inserts: []relational.InsertOp{
			{Rel: "Cites", Tuple: relational.Tuple{relational.IntVal(1), relational.IntVal(1), relational.IntVal(2)}},
		},
	})
	assertGraphsEqual(t, db, g)
}

// TestApplyAcrossManyBatches drives a sequence of single-tuple batches —
// the streaming shape the incremental path exists for — asserting
// equivalence after every step and that the overlay stays bounded by the
// touched tuples.
func TestApplyAcrossManyBatches(t *testing.T) {
	db := tinyDBLP(t)
	g, err := Build(db)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	for i := 0; i < 8; i++ {
		pk := int64(100 + i)
		apply(t, db, g, relational.Batch{Inserts: []relational.InsertOp{
			{Rel: "Author", Tuple: relational.Tuple{relational.IntVal(pk), relational.StrVal("an")}},
			{Rel: "Writes", Tuple: relational.Tuple{relational.IntVal(pk), relational.IntVal(1), relational.IntVal(pk)}},
		}})
		assertGraphsEqual(t, db, g)
	}
	for i := 0; i < 8; i++ {
		pk := int64(100 + i)
		apply(t, db, g, relational.Batch{Deletes: []relational.DeleteOp{
			{Rel: "Writes", PK: pk},
			{Rel: "Author", PK: pk},
		}})
		assertGraphsEqual(t, db, g)
	}
	if g.Patched() == 0 {
		t.Fatal("no overlay entries after 16 incremental batches")
	}
}

// TestApplyUnknownRelation feeds a result naming a relation the graph was
// never built over.
func TestApplyUnknownRelation(t *testing.T) {
	db := tinyDBLP(t)
	g, err := Build(db)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	err = g.Apply(relational.BatchResult{Inserted: map[string][]relational.TupleID{"Nope": {0}}})
	if err == nil {
		t.Fatal("Apply with unknown relation succeeded")
	}
}
