// Package mutgen builds random, schema-valid mutation batches for any
// database by introspection: inserts draw fresh primary keys and FK values
// from live tuples, deletes cascade referencers ahead of their target
// within the same batch. It is the shared generator behind the randomized
// equivalence harnesses — the root package's mutation-equivalence proof and
// the durability tier's crash-restart proof drive the same streams.
//
// Batches are expressed at the relational layer (relational.Batch);
// engine-level harnesses convert and attach their own Rerank cadence.
package mutgen

import (
	"fmt"
	"math/rand"
	"strconv"

	"sizelos/internal/relational"
)

// Gen generates random valid batches over one database. It reads the
// database's live state between batches (to pick victims and FK targets),
// so apply each batch before requesting the next.
type Gen struct {
	rng    *rand.Rand
	db     *relational.DB
	nextPK int64
}

// New returns a generator over db seeded for reproducibility. Generated
// primary keys start at 10_000_000, far above the dataset generators'.
func New(db *relational.DB, seed int64) *Gen {
	return &Gen{rng: rand.New(rand.NewSource(seed)), db: db, nextPK: 10_000_000}
}

// randomLive rejection-samples a live tuple of r, ok=false when none found.
func (m *Gen) randomLive(r *relational.Relation, banned map[string]bool) (relational.TupleID, bool) {
	if r.Live() == 0 {
		return 0, false
	}
	for try := 0; try < 64; try++ {
		id := relational.TupleID(m.rng.Intn(r.Len()))
		if r.Deleted(id) {
			continue
		}
		if banned != nil && banned[delKey(r.Name, r.PK(id))] {
			continue
		}
		return id, true
	}
	return 0, false
}

func delKey(rel string, pk int64) string { return rel + "#" + strconv.FormatInt(pk, 10) }

// randomTuple fabricates a schema-valid tuple for r with the given primary
// key. FK columns point at random live tuples outside the banned set (the
// batch's planned deletes — deletes apply first, so referencing one would
// fail validation); other columns get small positive values so ValueRank
// weightings stay well-defined.
func (m *Gen) randomTuple(r *relational.Relation, pk int64, banned map[string]bool) (relational.Tuple, bool) {
	fkCols := make(map[int]string, len(r.FKs))
	for _, fk := range r.FKs {
		fkCols[r.ColIndex(fk.Column)] = fk.Ref
	}
	tuple := make(relational.Tuple, len(r.Columns))
	for ci, col := range r.Columns {
		switch {
		case ci == r.PKCol:
			tuple[ci] = relational.IntVal(pk)
		case fkCols[ci] != "":
			ref := m.db.Relation(fkCols[ci])
			id, ok := m.randomLive(ref, banned)
			if !ok {
				return nil, false
			}
			tuple[ci] = relational.IntVal(ref.PK(id))
		case col.Kind == relational.KindInt:
			tuple[ci] = relational.IntVal(int64(1 + m.rng.Intn(999)))
		case col.Kind == relational.KindFloat:
			tuple[ci] = relational.FloatVal(1 + 999*m.rng.Float64())
		default:
			tuple[ci] = relational.StrVal(fmt.Sprintf("synthetic term%d payload%d",
				m.rng.Intn(500), m.rng.Intn(500)))
		}
	}
	return tuple, true
}

// cascade schedules (rel, pk) for deletion after every live tuple that
// references it, recursively, deduplicated. Returns false when the cascade
// would exceed limit tuples — the caller then skips this victim.
func (m *Gen) cascade(rel string, pk int64, limit int, seen map[string]bool, out *[]relational.DeleteOp) bool {
	key := delKey(rel, pk)
	if seen[key] {
		return true
	}
	seen[key] = true
	for _, ref := range m.db.ReferencingTuples(rel, pk) {
		r := m.db.Relation(ref.Rel)
		for _, id := range ref.IDs {
			if !m.cascade(ref.Rel, r.PK(id), limit, seen, out) {
				return false
			}
		}
	}
	if len(*out) >= limit {
		return false
	}
	*out = append(*out, relational.DeleteOp{Rel: rel, PK: pk})
	return true
}

// NextBatch assembles one random batch: up to three cascade deletes, up to
// four inserts (occasionally reusing a just-deleted primary key to exercise
// the delete-then-insert slot path), never empty.
func (m *Gen) NextBatch() relational.Batch {
	var b relational.Batch
	banned := make(map[string]bool)
	for m.rng.Intn(2) == 0 && len(b.Deletes) < 12 {
		r := m.db.Relations[m.rng.Intn(len(m.db.Relations))]
		id, ok := m.randomLive(r, banned)
		if !ok {
			break
		}
		// Cascade into a tentative mark set, merged only when the whole
		// cascade fits: an overflowed cascade must leave no trace, or a
		// later victim would skip "already seen" referencers that were in
		// fact never scheduled and fail the integrity check.
		tentative := make(map[string]bool, len(banned))
		for k := range banned {
			tentative[k] = true
		}
		var out []relational.DeleteOp
		if m.cascade(r.Name, r.PK(id), 16, tentative, &out) {
			banned = tentative
			b.Deletes = append(b.Deletes, out...)
		}
	}
	// banned now holds exactly the scheduled deletes.
	nIns := 1 + m.rng.Intn(4)
	reused := make(map[string]bool)
	for i := 0; i < nIns; i++ {
		r := m.db.Relations[m.rng.Intn(len(m.db.Relations))]
		pk := m.nextPK
		if len(b.Deletes) > 0 && m.rng.Intn(4) == 0 {
			// Reuse a deleted PK: same logical identity, fresh slot.
			d := b.Deletes[m.rng.Intn(len(b.Deletes))]
			if del := m.db.Relation(d.Rel); del != nil && !reused[delKey(d.Rel, d.PK)] {
				r, pk = del, d.PK
				reused[delKey(d.Rel, d.PK)] = true
			}
		}
		if pk == m.nextPK {
			m.nextPK++
		}
		tuple, ok := m.randomTuple(r, pk, banned)
		if !ok {
			continue
		}
		b.Inserts = append(b.Inserts, relational.InsertOp{Rel: r.Name, Tuple: tuple})
	}
	return b
}
