package relational

import (
	"fmt"
	"strconv"
)

// Kind enumerates the column types supported by the engine. The size-l OS
// workloads (DBLP, TPC-H) only need integers, floats and strings.
type Kind uint8

const (
	// KindInt is a 64-bit signed integer column (also used for all keys).
	KindInt Kind = iota
	// KindFloat is a 64-bit floating point column.
	KindFloat
	// KindString is a variable-length string column.
	KindString
)

// String returns the SQL-ish name of the kind.
func (k Kind) String() string {
	switch k {
	case KindInt:
		return "INTEGER"
	case KindFloat:
		return "FLOAT"
	case KindString:
		return "VARCHAR"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Value is a single typed cell. Exactly one of the payload fields is
// meaningful, selected by Kind. A struct (rather than interface{}) keeps
// tuples pointer-free and cache-friendly; OSs routinely touch 10^3..10^6
// tuples per query.
type Value struct {
	Kind  Kind
	Int   int64
	Float float64
	Str   string
}

// IntVal returns an integer Value.
func IntVal(v int64) Value { return Value{Kind: KindInt, Int: v} }

// FloatVal returns a float Value.
func FloatVal(v float64) Value { return Value{Kind: KindFloat, Float: v} }

// StrVal returns a string Value.
func StrVal(v string) Value { return Value{Kind: KindString, Str: v} }

// String renders the value for OS output (Examples 4 and 5 in the paper).
func (v Value) String() string {
	switch v.Kind {
	case KindInt:
		return strconv.FormatInt(v.Int, 10)
	case KindFloat:
		return strconv.FormatFloat(v.Float, 'f', 2, 64)
	case KindString:
		return v.Str
	default:
		return "?"
	}
}

// Equal reports whether two values are identical in kind and payload.
func (v Value) Equal(o Value) bool {
	if v.Kind != o.Kind {
		return false
	}
	switch v.Kind {
	case KindInt:
		return v.Int == o.Int
	case KindFloat:
		return v.Float == o.Float
	case KindString:
		return v.Str == o.Str
	}
	return false
}

// Less orders values of the same kind (ints and floats numerically, strings
// lexicographically). It is used by deterministic secondary sorts.
func (v Value) Less(o Value) bool {
	if v.Kind != o.Kind {
		return v.Kind < o.Kind
	}
	switch v.Kind {
	case KindInt:
		return v.Int < o.Int
	case KindFloat:
		return v.Float < o.Float
	case KindString:
		return v.Str < o.Str
	}
	return false
}
