package relational

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"testing/quick"
)

func TestJoinChildren(t *testing.T) {
	db := buildPetDB(t)
	pet := db.Relation("Pet")
	fk := pet.FKIndexOf("owner")

	db.ResetAccesses()
	got := db.JoinChildren(pet, fk, 1)
	want := []TupleID{0, 1}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("JoinChildren(owner=1) = %v, want %v", got, want)
	}
	if got := db.JoinChildren(pet, fk, 3); len(got) != 0 {
		t.Errorf("JoinChildren(owner=3) = %v, want empty", got)
	}
	if db.Accesses() != 2 {
		t.Errorf("Accesses = %d, want 2", db.Accesses())
	}
}

func TestLookupParent(t *testing.T) {
	db := buildPetDB(t)
	person := db.Relation("Person")
	id, ok := db.LookupParent(person, 2)
	if !ok || person.Tuples[id][1].Str != "Bob" {
		t.Errorf("LookupParent(2) = %d,%v", id, ok)
	}
	if _, ok := db.LookupParent(person, 42); ok {
		t.Error("LookupParent(42) should miss")
	}
}

func TestScanEq(t *testing.T) {
	db := buildPetDB(t)
	pet := db.Relation("Pet")
	got := db.ScanEqStr(pet, pet.ColIndex("species"), "dog")
	if len(got) != 1 || got[0] != 1 {
		t.Errorf("ScanEqStr(dog) = %v, want [1]", got)
	}
	person := db.Relation("Person")
	got = db.ScanEqInt(person, person.ColIndex("age"), 36)
	if len(got) != 1 || got[0] != 0 {
		t.Errorf("ScanEqInt(36) = %v, want [0]", got)
	}
	if got := db.ScanEqStr(pet, pet.ColIndex("species"), "emu"); len(got) != 0 {
		t.Errorf("ScanEqStr(emu) = %v, want empty", got)
	}
}

func TestResetAccesses(t *testing.T) {
	db := buildPetDB(t)
	pet := db.Relation("Pet")
	db.JoinChildren(pet, 0, 1)
	if n := db.ResetAccesses(); n != 1 {
		t.Errorf("ResetAccesses = %d, want 1", n)
	}
	if db.Accesses() != 0 {
		t.Errorf("Accesses after reset = %d", db.Accesses())
	}
}

func TestMaxScore(t *testing.T) {
	tests := []struct {
		s    Scores
		want float64
	}{
		{nil, 0},
		{Scores{0.5}, 0.5},
		{Scores{0.1, 0.9, 0.3}, 0.9},
		{Scores{-1, -2}, 0}, // scores are non-negative in practice; max clamps at 0
	}
	for _, tc := range tests {
		if got := tc.s.MaxScore(); got != tc.want {
			t.Errorf("MaxScore(%v) = %v, want %v", tc.s, got, tc.want)
		}
	}
}

// buildScoredRelation creates a relation with n children of a single parent
// key and the given scores.
func buildScoredRelation(t *testing.T, scores []float64) (*DB, *Relation, Scores) {
	t.Helper()
	db := NewDB("scored")
	parent := MustNewRelation("P", []Column{{Name: "id", Kind: KindInt}}, "id", nil)
	child := MustNewRelation("C",
		[]Column{{Name: "id", Kind: KindInt}, {Name: "p", Kind: KindInt}},
		"id", []ForeignKey{{Column: "p", Ref: "P"}})
	db.MustAddRelation(parent)
	db.MustAddRelation(child)
	parent.MustInsert(Tuple{IntVal(1)})
	for i := range scores {
		child.MustInsert(Tuple{IntVal(int64(i)), IntVal(1)})
	}
	return db, child, Scores(scores)
}

func TestOrderedFKIndexTopL(t *testing.T) {
	db, child, scores := buildScoredRelation(t, []float64{0.3, 0.9, 0.1, 0.9, 0.5})
	idx := BuildOrderedFKIndex(child, 0, scores)

	tests := []struct {
		name    string
		min     float64
		limit   int
		wantIDs []TupleID
	}{
		{"all above zero", 0, 10, []TupleID{1, 3, 4, 0, 2}},
		{"limit two", 0, 2, []TupleID{1, 3}},
		{"threshold excludes", 0.4, 10, []TupleID{1, 3, 4}},
		{"threshold strict", 0.9, 10, nil}, // strictly greater: 0.9 excluded
		{"limit zero", 0, 0, nil},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			got := idx.TopL(db, 1, tc.min, tc.limit)
			if !reflect.DeepEqual(got, tc.wantIDs) {
				t.Errorf("TopL(min=%v,limit=%d) = %v, want %v", tc.min, tc.limit, got, tc.wantIDs)
			}
		})
	}

	// Missing key: empty but still charged (Avoidance Condition 2 cost note).
	db.ResetAccesses()
	if got := idx.TopL(db, 99, 0, 5); len(got) != 0 {
		t.Errorf("TopL(missing key) = %v", got)
	}
	if db.Accesses() != 1 {
		t.Errorf("Accesses = %d, want 1 (empty result still charged)", db.Accesses())
	}
}

// Property: TopL equals filtering+sorting the full join by score.
func TestOrderedFKIndexMatchesNaive(t *testing.T) {
	cfg := &quick.Config{
		MaxCount: 60,
		Rand:     rand.New(rand.NewSource(42)),
		Values: func(vals []reflect.Value, r *rand.Rand) {
			n := r.Intn(30)
			scores := make([]float64, n)
			for i := range scores {
				scores[i] = float64(r.Intn(10)) / 10 // duplicates likely
			}
			vals[0] = reflect.ValueOf(scores)
			vals[1] = reflect.ValueOf(r.Float64())
			vals[2] = reflect.ValueOf(r.Intn(12))
		},
	}
	f := func(scoresIn []float64, min float64, limit int) bool {
		db, child, scores := buildScoredRelation(t, scoresIn)
		idx := BuildOrderedFKIndex(child, 0, scores)
		got := idx.TopL(db, 1, min, limit)

		// Naive reference.
		var want []TupleID
		all := child.fkIndex[0][1]
		sorted := make([]TupleID, len(all))
		copy(sorted, all)
		sort.Slice(sorted, func(a, b int) bool {
			sa, sb := scores[sorted[a]], scores[sorted[b]]
			if sa != sb {
				return sa > sb
			}
			return sorted[a] < sorted[b]
		})
		for _, id := range sorted {
			if len(want) >= limit {
				break
			}
			if scores[id] > min {
				want = append(want, id)
			} else {
				break
			}
		}
		return reflect.DeepEqual(got, want)
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}
