package relational

import (
	"encoding/gob"
	"fmt"
	"io"
)

// relationStateWire is the layout-preserving persisted form of a Relation:
// every physical slot (tombstones included, content retained), the
// tombstone mask, and the mutation counter. Unlike relationWire it promises
// that decoding reproduces the exact physical layout — TupleID for TupleID —
// which the durability tier needs so that a recovered engine's score
// vectors, data-graph node ids and keyword postings line up bit-for-bit
// with the snapshotted ones.
type relationStateWire struct {
	Name    string
	Columns []Column
	PKCol   string
	FKs     []ForeignKey
	Tuples  []Tuple
	// Deleted lists the tombstoned slot ids, ascending.
	Deleted []TupleID
	Version uint64
}

type dbStateWire struct {
	Name      string
	Relations []relationStateWire
}

// EncodeState serializes the database preserving physical layout: tombstoned
// slots keep their position and content, and each relation's mutation
// counter rides along. The encoding is deterministic (the wire structs hold
// no maps), so byte-equality of two EncodeState outputs implies physically
// identical databases — the crash-recovery harness uses exactly that as its
// equality oracle. Use Encode instead when dense re-numbered TupleIDs are
// acceptable and tombstone slots should be reclaimed.
func (db *DB) EncodeState(w io.Writer) error {
	wire := dbStateWire{Name: db.Name}
	for _, r := range db.Relations {
		rw := relationStateWire{
			Name:    r.Name,
			Columns: r.Columns,
			PKCol:   r.Columns[r.PKCol].Name,
			FKs:     r.FKs,
			Tuples:  r.Tuples,
			Version: r.version,
		}
		if r.tombstones > 0 {
			rw.Deleted = make([]TupleID, 0, r.tombstones)
			for id := range r.Tuples {
				if r.deleted[id] {
					rw.Deleted = append(rw.Deleted, TupleID(id))
				}
			}
		}
		wire.Relations = append(wire.Relations, rw)
	}
	return gob.NewEncoder(w).Encode(&wire)
}

// ReadDBState deserializes a database written by EncodeState, reproducing
// the exact physical layout: slot order, tombstone mask and per-relation
// version counters. Indexes are rebuilt by replaying each slot in order —
// insert, then tombstone if the slot was deleted. The interleaving matters:
// a tombstoned slot may share its primary key with a later live slot (the
// original history deleted then re-inserted that key), so the tombstone's
// key must leave the PK index before the live slot claims it.
func ReadDBState(rd io.Reader) (*DB, error) {
	var wire dbStateWire
	if err := gob.NewDecoder(rd).Decode(&wire); err != nil {
		return nil, fmt.Errorf("decode db state: %w", err)
	}
	db := NewDB(wire.Name)
	for _, rw := range wire.Relations {
		rel, err := NewRelation(rw.Name, rw.Columns, rw.PKCol, rw.FKs)
		if err != nil {
			return nil, fmt.Errorf("rebuild relation %s: %w", rw.Name, err)
		}
		next := 0 // cursor into rw.Deleted (ascending)
		for id, t := range rw.Tuples {
			if _, err := rel.Insert(t); err != nil {
				return nil, fmt.Errorf("reload relation %s slot %d: %w", rw.Name, id, err)
			}
			if next < len(rw.Deleted) && rw.Deleted[next] == TupleID(id) {
				if err := rel.Delete(TupleID(id)); err != nil {
					return nil, fmt.Errorf("reload relation %s tombstone %d: %w", rw.Name, id, err)
				}
				next++
			}
		}
		if next != len(rw.Deleted) {
			return nil, fmt.Errorf("reload relation %s: %d tombstone ids out of range or out of order",
				rw.Name, len(rw.Deleted)-next)
		}
		// The replay above bumped the counter once per insert/delete; the
		// persisted counter also covers compactions, rollbacks and restores
		// from the original history, so restore it verbatim.
		rel.version = rw.Version
		if err := db.AddRelation(rel); err != nil {
			return nil, err
		}
	}
	return db, nil
}
