package relational

import (
	"fmt"
	"sort"
	"sync/atomic"
)

// TupleID is the dense, zero-based position of a tuple within its relation.
// It doubles as the tuple's physical row id; primary-key values map to
// TupleIDs through the relation's PK index.
type TupleID int32

// Tuple is a row: one Value per column, in schema order.
type Tuple []Value

// Column describes one attribute of a relation.
type Column struct {
	Name string
	Kind Kind
	// Affinity is the attribute affinity used to decide which attributes an
	// OS presents (the paper's θ′ threshold, §2.1). 1.0 means always shown.
	Affinity float64
}

// ForeignKey declares that column Column of this relation references the
// primary key of relation Ref.
type ForeignKey struct {
	Column string // column in the owning relation, must be KindInt
	Ref    string // referenced relation name
}

// Relation is a table: a schema plus the physical tuple store and its
// indexes. Mutations are not concurrency-safe in isolation; concurrent
// deployments serialize them against reads one level up (the engine takes a
// write lock for the duration of a mutation batch).
//
// Deletes are tombstones: the tuple keeps its physical slot (so TupleIDs,
// data-graph node ids and score vector positions stay stable) but leaves
// every index, so lookups, joins and scans no longer see it. The slot's
// content is retained, which lets incremental index maintenance tokenize
// the deleted tuple one last time to retract its postings.
type Relation struct {
	Name    string
	Columns []Column
	// PKCol is the index of the primary-key column (KindInt, unique).
	PKCol int
	FKs   []ForeignKey

	Tuples []Tuple

	pkIndex map[int64]TupleID
	// fkIndex[fk ordinal][key] lists the live tuples whose FK equals key, in
	// ascending TupleID order. For an append-only store ascending order is
	// insertion order; Delete preserves it by removing in place and Insert by
	// appending the (always largest) new id.
	fkIndex []map[int64][]TupleID

	colByName map[string]int

	// deleted marks tombstoned slots; nil until the first Delete, then kept
	// the same length as Tuples. tombstones counts the true entries.
	deleted    []bool
	tombstones int
	// version counts mutations (inserts, deletes, restores) so derived
	// structures can detect staleness cheaply.
	version uint64
}

// NewRelation constructs an empty relation. pkCol names the primary-key
// column, which must exist and be an integer column.
func NewRelation(name string, cols []Column, pkCol string, fks []ForeignKey) (*Relation, error) {
	r := &Relation{
		Name:      name,
		Columns:   cols,
		FKs:       fks,
		pkIndex:   make(map[int64]TupleID),
		fkIndex:   make([]map[int64][]TupleID, len(fks)),
		colByName: make(map[string]int, len(cols)),
	}
	for i, c := range cols {
		if _, dup := r.colByName[c.Name]; dup {
			return nil, fmt.Errorf("relation %s: duplicate column %s", name, c.Name)
		}
		r.colByName[c.Name] = i
	}
	pk, ok := r.colByName[pkCol]
	if !ok {
		return nil, fmt.Errorf("relation %s: primary key column %s not found", name, pkCol)
	}
	if cols[pk].Kind != KindInt {
		return nil, fmt.Errorf("relation %s: primary key column %s must be INTEGER", name, pkCol)
	}
	r.PKCol = pk
	for i, fk := range fks {
		ci, ok := r.colByName[fk.Column]
		if !ok {
			return nil, fmt.Errorf("relation %s: foreign key column %s not found", name, fk.Column)
		}
		if cols[ci].Kind != KindInt {
			return nil, fmt.Errorf("relation %s: foreign key column %s must be INTEGER", name, fk.Column)
		}
		r.fkIndex[i] = make(map[int64][]TupleID)
	}
	return r, nil
}

// MustNewRelation is NewRelation for statically-known schemas; it panics on
// schema definition errors, which are programming mistakes.
func MustNewRelation(name string, cols []Column, pkCol string, fks []ForeignKey) *Relation {
	r, err := NewRelation(name, cols, pkCol, fks)
	if err != nil {
		panic(err)
	}
	return r
}

// ColIndex returns the ordinal of the named column, or -1 if absent.
func (r *Relation) ColIndex(name string) int {
	if i, ok := r.colByName[name]; ok {
		return i
	}
	return -1
}

// FKIndexOf returns the ordinal of the foreign key declared on column col,
// or -1 if col carries no foreign key.
func (r *Relation) FKIndexOf(col string) int {
	for i, fk := range r.FKs {
		if fk.Column == col {
			return i
		}
	}
	return -1
}

// Len returns the number of physical tuple slots, including tombstones.
// TupleIDs range over [0, Len()).
func (r *Relation) Len() int { return len(r.Tuples) }

// Live returns the number of live (non-tombstoned) tuples.
func (r *Relation) Live() int { return len(r.Tuples) - r.tombstones }

// Deleted reports whether tuple id is a tombstoned slot.
func (r *Relation) Deleted(id TupleID) bool {
	return int(id) < len(r.deleted) && r.deleted[id]
}

// Tombstones returns the number of tombstoned slots — the dead weight
// physical compaction would reclaim.
func (r *Relation) Tombstones() int { return r.tombstones }

// Compact physically removes every tombstoned slot: live tuples slide down
// into a dense prefix (preserving relative order), the PK and FK indexes
// are rewritten to the new positions, and the tombstone bookkeeping resets.
// It returns the remap table: remap[old] is the new TupleID of each
// formerly-live slot, or -1 for reclaimed tombstones. nil means the
// relation had no tombstones and nothing moved.
//
// Compaction invalidates every external structure that holds this
// relation's TupleIDs — keyword postings, data-graph nodes, score vectors,
// cached summaries. The engine owns that choreography; never call Compact
// on a database an engine is serving.
func (r *Relation) Compact() []TupleID {
	if r.tombstones == 0 {
		return nil
	}
	remap := make([]TupleID, len(r.Tuples))
	next := TupleID(0)
	for i := range r.Tuples {
		if r.deleted[i] {
			remap[i] = -1
			continue
		}
		remap[i] = next
		r.Tuples[next] = r.Tuples[i]
		next++
	}
	clear(r.Tuples[next:]) // release the slid-out tails for GC
	r.Tuples = r.Tuples[:next]
	r.deleted = nil
	r.tombstones = 0
	for pk, id := range r.pkIndex {
		r.pkIndex[pk] = remap[id]
	}
	// The remap is monotonic over live ids, so remapping posting lists in
	// place preserves their ascending order.
	for fi := range r.fkIndex {
		for _, list := range r.fkIndex[fi] {
			for j, id := range list {
				list[j] = remap[id]
			}
		}
	}
	r.version++
	return remap
}

// Version returns the relation's mutation counter. It starts at 0 and is
// bumped by every Insert and Delete (and by the rollback restores of a
// failed batch), so equality of versions implies identical content.
func (r *Relation) Version() uint64 { return r.version }

// Insert appends a tuple, maintaining all indexes. The tuple must match the
// schema arity and kinds, and its primary key must be unique.
func (r *Relation) Insert(t Tuple) (TupleID, error) {
	if len(t) != len(r.Columns) {
		return 0, fmt.Errorf("relation %s: tuple arity %d, want %d", r.Name, len(t), len(r.Columns))
	}
	for i, v := range t {
		if v.Kind != r.Columns[i].Kind {
			return 0, fmt.Errorf("relation %s: column %s has kind %v, got %v",
				r.Name, r.Columns[i].Name, r.Columns[i].Kind, v.Kind)
		}
	}
	pk := t[r.PKCol].Int
	if _, dup := r.pkIndex[pk]; dup {
		return 0, fmt.Errorf("relation %s: duplicate primary key %d", r.Name, pk)
	}
	id := TupleID(len(r.Tuples))
	r.Tuples = append(r.Tuples, t)
	if r.deleted != nil {
		r.deleted = append(r.deleted, false)
	}
	r.pkIndex[pk] = id
	for fi, fk := range r.FKs {
		ci := r.colByName[fk.Column]
		key := t[ci].Int
		r.fkIndex[fi][key] = append(r.fkIndex[fi][key], id)
	}
	r.version++
	return id, nil
}

// Delete tombstones tuple id: the slot stays (content included) but the
// tuple leaves the PK and FK indexes, so joins, scans and OS extraction no
// longer reach it. Deleting does not check inbound foreign keys — DB.Apply
// layers that integrity check on top.
func (r *Relation) Delete(id TupleID) error {
	if id < 0 || int(id) >= len(r.Tuples) {
		return fmt.Errorf("relation %s: delete of tuple %d out of range (%d tuples)", r.Name, id, len(r.Tuples))
	}
	if r.Deleted(id) {
		return fmt.Errorf("relation %s: tuple %d already deleted", r.Name, id)
	}
	if r.deleted == nil {
		r.deleted = make([]bool, len(r.Tuples))
	}
	r.deleted[id] = true
	r.tombstones++
	delete(r.pkIndex, r.Tuples[id][r.PKCol].Int)
	for fi, fk := range r.FKs {
		ci := r.colByName[fk.Column]
		key := r.Tuples[id][ci].Int
		r.fkIndex[fi][key] = removeID(r.fkIndex[fi][key], id)
		if len(r.fkIndex[fi][key]) == 0 {
			delete(r.fkIndex[fi], key)
		}
	}
	r.version++
	return nil
}

// restore reverses a Delete during batch rollback: the tombstone is cleared
// and the tuple rejoins the PK index and (in ascending-id position) every FK
// posting list, restoring the exact pre-delete index state.
func (r *Relation) restore(id TupleID) {
	r.deleted[id] = false
	r.tombstones--
	r.pkIndex[r.Tuples[id][r.PKCol].Int] = id
	for fi, fk := range r.FKs {
		ci := r.colByName[fk.Column]
		key := r.Tuples[id][ci].Int
		r.fkIndex[fi][key] = insertID(r.fkIndex[fi][key], id)
	}
	r.version++
}

// undoInsert reverses the most recent Insert during batch rollback; id must
// be the last slot.
func (r *Relation) undoInsert(id TupleID) {
	delete(r.pkIndex, r.Tuples[id][r.PKCol].Int)
	for fi, fk := range r.FKs {
		ci := r.colByName[fk.Column]
		key := r.Tuples[id][ci].Int
		r.fkIndex[fi][key] = removeID(r.fkIndex[fi][key], id)
		if len(r.fkIndex[fi][key]) == 0 {
			delete(r.fkIndex[fi], key)
		}
	}
	r.Tuples = r.Tuples[:id]
	if r.deleted != nil {
		r.deleted = r.deleted[:id]
	}
	r.version++
}

// removeID deletes id from an ascending posting list, preserving order.
func removeID(list []TupleID, id TupleID) []TupleID {
	i := sort.Search(len(list), func(i int) bool { return list[i] >= id })
	if i == len(list) || list[i] != id {
		return list
	}
	return append(list[:i], list[i+1:]...)
}

// insertID adds id to an ascending posting list at its sorted position.
func insertID(list []TupleID, id TupleID) []TupleID {
	i := sort.Search(len(list), func(i int) bool { return list[i] >= id })
	list = append(list, 0)
	copy(list[i+1:], list[i:])
	list[i] = id
	return list
}

// MustInsert inserts a tuple generated by trusted code (the dataset
// generators); it panics on schema violations.
func (r *Relation) MustInsert(t Tuple) TupleID {
	id, err := r.Insert(t)
	if err != nil {
		panic(err)
	}
	return id
}

// PK returns the primary-key value of tuple id.
func (r *Relation) PK(id TupleID) int64 { return r.Tuples[id][r.PKCol].Int }

// LookupPK resolves a primary-key value to a TupleID.
func (r *Relation) LookupPK(pk int64) (TupleID, bool) {
	id, ok := r.pkIndex[pk]
	return id, ok
}

// Tuple returns the tuple stored at id.
func (r *Relation) Tuple(id TupleID) Tuple { return r.Tuples[id] }

// DB is a named collection of relations: the database the size-l system
// searches. Relations keep their registration order, which the schema graph
// and experiments rely on for deterministic iteration.
type DB struct {
	Name      string
	Relations []*Relation

	relByName map[string]int
	// accesses counts relation extractions (joins/scans). The paper charges
	// each Ri(tj) extraction as one access (§5.3 cost discussion); the
	// experiment harness reads and resets this counter via Accesses /
	// ResetAccesses. Atomic because concurrent DBSource-backed summaries
	// charge the same database.
	accesses atomic.Int64
}

// NewDB creates an empty database.
func NewDB(name string) *DB {
	return &DB{Name: name, relByName: make(map[string]int)}
}

// AddRelation registers a relation. Registration order is preserved.
func (db *DB) AddRelation(r *Relation) error {
	if _, dup := db.relByName[r.Name]; dup {
		return fmt.Errorf("db %s: duplicate relation %s", db.Name, r.Name)
	}
	db.relByName[r.Name] = len(db.Relations)
	db.Relations = append(db.Relations, r)
	return nil
}

// MustAddRelation registers a statically-known relation, panicking on
// duplicates.
func (db *DB) MustAddRelation(r *Relation) {
	if err := db.AddRelation(r); err != nil {
		panic(err)
	}
}

// Relation returns the named relation, or nil if absent.
func (db *DB) Relation(name string) *Relation {
	if i, ok := db.relByName[name]; ok {
		return db.Relations[i]
	}
	return nil
}

// RelIndex returns the registration ordinal of the named relation, or -1.
func (db *DB) RelIndex(name string) int {
	if i, ok := db.relByName[name]; ok {
		return i
	}
	return -1
}

// TotalTuples returns the number of tuples across all relations.
func (db *DB) TotalTuples() int {
	n := 0
	for _, r := range db.Relations {
		n += r.Len()
	}
	return n
}

// Validate checks referential integrity: every foreign-key value must
// resolve in the referenced relation. It returns all violations found (up to
// a small cap), which the dataset generators' tests assert to be empty.
func (db *DB) Validate() []error {
	const maxErrs = 20
	var errs []error
	for _, r := range db.Relations {
		for fi, fk := range r.FKs {
			ref := db.Relation(fk.Ref)
			if ref == nil {
				errs = append(errs, fmt.Errorf("%s.%s references unknown relation %s", r.Name, fk.Column, fk.Ref))
				continue
			}
			keys := make([]int64, 0, len(r.fkIndex[fi]))
			for k := range r.fkIndex[fi] {
				keys = append(keys, k)
			}
			sort.Slice(keys, func(a, b int) bool { return keys[a] < keys[b] })
			for _, k := range keys {
				if _, ok := ref.LookupPK(k); !ok {
					errs = append(errs, fmt.Errorf("%s.%s=%d has no match in %s", r.Name, fk.Column, k, fk.Ref))
					if len(errs) >= maxErrs {
						return errs
					}
				}
			}
		}
	}
	return errs
}
