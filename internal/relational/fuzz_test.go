package relational

// Fuzzing DB.Apply: random byte strings decode into mutation batches over a
// small Parent/Child fixture — inserts with colliding or fresh primary
// keys, FKs that may dangle, deletes of referenced, unreferenced or absent
// tuples, delete-then-insert of the same key, duplicates within one batch.
// Whatever the batch, two properties must hold:
//
//   - Atomicity: a rejected batch leaves the database observably identical
//     to its pre-batch state (tombstone flags, PK lookups, FK posting
//     lists, tuple contents — everything except version counters, which
//     only move forward).
//   - Consistency: an accepted batch leaves every index derivable from a
//     clean scan — ascending live-only FK postings, a PK index covering
//     exactly the live tuples — and a result whose id lists are ascending.
//
// The committed corpus under testdata/fuzz/FuzzApply seeds CI's short
// -fuzztime smoke; `go test -fuzz=FuzzApply ./internal/relational` explores
// further.

import (
	"fmt"
	"reflect"
	"testing"
)

// fuzzDB builds the fixture: parents 1..8, children 1..6 referencing
// parents {1,1,2,3,4,5} — parents 6..8 start unreferenced and deletable.
func fuzzDB(t *testing.T) *DB {
	t.Helper()
	db := NewDB("fuzz")
	parent := MustNewRelation("Parent",
		[]Column{{Name: "id", Kind: KindInt}, {Name: "name", Kind: KindString}},
		"id", nil)
	child := MustNewRelation("Child",
		[]Column{{Name: "id", Kind: KindInt}, {Name: "parent", Kind: KindInt}},
		"id", []ForeignKey{{Column: "parent", Ref: "Parent"}})
	db.MustAddRelation(parent)
	db.MustAddRelation(child)
	for i := int64(1); i <= 8; i++ {
		parent.MustInsert(Tuple{IntVal(i), StrVal(fmt.Sprintf("p%d", i))})
	}
	for i, p := range []int64{1, 1, 2, 3, 4, 5} {
		child.MustInsert(Tuple{IntVal(int64(i + 1)), IntVal(p)})
	}
	return db
}

// decodeBatch turns a byte string into a batch: three bytes per operation
// [kind, pk, fk]. Keys are folded into a 24-value space so collisions with
// the fixture — and between operations — are common.
func decodeBatch(data []byte) Batch {
	var b Batch
	for i := 0; i+2 < len(data) && len(b.Deletes)+len(b.Inserts) < 24; i += 3 {
		kind, pk, fk := data[i]%5, int64(data[i+1]%24), int64(data[i+2]%24)
		switch kind {
		case 0:
			b.Inserts = append(b.Inserts, InsertOp{Rel: "Parent", Tuple: Tuple{IntVal(pk), StrVal("fp")}})
		case 1:
			b.Inserts = append(b.Inserts, InsertOp{Rel: "Child", Tuple: Tuple{IntVal(pk), IntVal(fk)}})
		case 2:
			b.Deletes = append(b.Deletes, DeleteOp{Rel: "Parent", PK: pk})
		case 3:
			b.Deletes = append(b.Deletes, DeleteOp{Rel: "Child", PK: pk})
		case 4:
			// Malformed on purpose: wrong arity / kind / unknown relation,
			// steered by fk so the corpus reaches each rejection path.
			switch fk % 3 {
			case 0:
				b.Inserts = append(b.Inserts, InsertOp{Rel: "Parent", Tuple: Tuple{IntVal(pk)}})
			case 1:
				b.Inserts = append(b.Inserts, InsertOp{Rel: "Child", Tuple: Tuple{IntVal(pk), StrVal("notint")}})
			default:
				b.Deletes = append(b.Deletes, DeleteOp{Rel: "Ghost", PK: pk})
			}
		}
	}
	return b
}

// relSnapshot captures everything observable about a relation except the
// version counter.
type relSnapshot struct {
	tuples     []Tuple
	deleted    []bool
	tombstones int
	pkIndex    map[int64]TupleID
	fkIndex    []map[int64][]TupleID
}

func snapshot(r *Relation) relSnapshot {
	s := relSnapshot{
		tuples:     append([]Tuple(nil), r.Tuples...),
		deleted:    append([]bool(nil), r.deleted...),
		tombstones: r.tombstones,
		pkIndex:    make(map[int64]TupleID, len(r.pkIndex)),
		fkIndex:    make([]map[int64][]TupleID, len(r.fkIndex)),
	}
	for k, v := range r.pkIndex {
		s.pkIndex[k] = v
	}
	for fi, m := range r.fkIndex {
		c := make(map[int64][]TupleID, len(m))
		for k, v := range m {
			c[k] = append([]TupleID(nil), v...)
		}
		s.fkIndex[fi] = c
	}
	return s
}

func (s relSnapshot) equal(r *Relation) string {
	if !reflect.DeepEqual(s.tuples, r.Tuples) {
		return "tuple store changed"
	}
	liveEq := len(s.deleted) == len(r.deleted)
	if !liveEq && (len(s.deleted) == 0 || len(r.deleted) == 0) {
		// nil vs all-false is the same observable state.
		liveEq = true
		for _, d := range s.deleted {
			liveEq = liveEq && !d
		}
		for _, d := range r.deleted {
			liveEq = liveEq && !d
		}
	} else if liveEq {
		liveEq = reflect.DeepEqual(s.deleted, r.deleted)
	}
	if !liveEq {
		return "tombstone flags changed"
	}
	if s.tombstones != r.tombstones {
		return "tombstone count changed"
	}
	if !reflect.DeepEqual(s.pkIndex, r.pkIndex) {
		return "pk index changed"
	}
	for fi := range s.fkIndex {
		for k, v := range s.fkIndex[fi] {
			if !reflect.DeepEqual(v, r.fkIndex[fi][k]) {
				return fmt.Sprintf("fk index %d key %d changed", fi, k)
			}
		}
		for k := range r.fkIndex[fi] {
			if _, ok := s.fkIndex[fi][k]; !ok && len(r.fkIndex[fi][k]) > 0 {
				return fmt.Sprintf("fk index %d gained key %d", fi, k)
			}
		}
	}
	return ""
}

// checkConsistent verifies every index against a clean scan of the store.
func checkConsistent(t *testing.T, db *DB) {
	t.Helper()
	for _, r := range db.Relations {
		if len(r.deleted) != 0 && len(r.deleted) != len(r.Tuples) {
			t.Fatalf("%s: deleted flags len %d vs %d tuples", r.Name, len(r.deleted), len(r.Tuples))
		}
		tomb := 0
		for _, d := range r.deleted {
			if d {
				tomb++
			}
		}
		if tomb != r.tombstones {
			t.Fatalf("%s: tombstones %d, flags say %d", r.Name, r.tombstones, tomb)
		}
		if len(r.pkIndex) != r.Live() {
			t.Fatalf("%s: pk index has %d entries, %d live tuples", r.Name, len(r.pkIndex), r.Live())
		}
		for i := range r.Tuples {
			id := TupleID(i)
			pk := r.PK(id)
			got, ok := r.pkIndex[pk]
			if r.Deleted(id) {
				if ok && got == id {
					t.Fatalf("%s: tombstoned tuple %d still in pk index", r.Name, id)
				}
				continue
			}
			if !ok || got != id {
				t.Fatalf("%s: live tuple %d (pk %d) mapped to %v,%v", r.Name, id, pk, got, ok)
			}
		}
		for fi, fk := range r.FKs {
			want := make(map[int64][]TupleID)
			ci := r.colByName[fk.Column]
			for i := range r.Tuples {
				if r.Deleted(TupleID(i)) {
					continue
				}
				key := r.Tuples[i][ci].Int
				want[key] = append(want[key], TupleID(i))
			}
			got := r.fkIndex[fi]
			if len(got) != len(want) {
				t.Fatalf("%s: fk %d has %d keys, scan says %d", r.Name, fi, len(got), len(want))
			}
			for k, ids := range want {
				if !reflect.DeepEqual(got[k], ids) {
					t.Fatalf("%s: fk %d key %d = %v, scan says %v", r.Name, fi, k, got[k], ids)
				}
			}
		}
	}
	if errs := db.Validate(); len(errs) > 0 {
		t.Fatalf("integrity violations: %v", errs)
	}
}

func ascending(ids []TupleID) bool {
	for i := 1; i < len(ids); i++ {
		if ids[i] <= ids[i-1] {
			return false
		}
	}
	return true
}

func FuzzApply(f *testing.F) {
	// One seed per rejection and acceptance shape; the committed corpus
	// mirrors these (see testdata/fuzz/FuzzApply).
	f.Add([]byte{0, 20, 0})                      // fresh parent insert
	f.Add([]byte{0, 1, 0})                       // duplicate parent pk
	f.Add([]byte{1, 20, 1, 1, 21, 23})           // child ok + child dangling fk
	f.Add([]byte{2, 6, 0, 0, 6, 0})              // delete parent then reinsert same pk
	f.Add([]byte{2, 1, 0})                       // delete referenced parent
	f.Add([]byte{3, 1, 0, 3, 1, 0})              // double-delete same child
	f.Add([]byte{3, 6, 0, 3, 5, 0, 2, 5, 0})     // retract children newest-first, then parent
	f.Add([]byte{4, 9, 0, 4, 9, 1, 4, 9, 2})     // malformed trio
	f.Add([]byte{2, 7, 0, 1, 7, 7, 0, 7, 0})     // fk into parent deleted earlier in batch
	f.Add([]byte{0, 23, 0, 1, 23, 23, 3, 23, 0}) // insert chain then delete it... (delete precedes, rejected)
	f.Fuzz(func(t *testing.T, data []byte) {
		db := fuzzDB(t)
		batch := decodeBatch(data)
		before := make([]relSnapshot, len(db.Relations))
		versions := make([]uint64, len(db.Relations))
		for i, r := range db.Relations {
			before[i] = snapshot(r)
			versions[i] = r.Version()
		}
		res, err := db.Apply(batch)
		if err != nil {
			for i, r := range db.Relations {
				if msg := before[i].equal(r); msg != "" {
					t.Fatalf("rejected batch mutated %s: %s (batch %+v, err %v)", r.Name, msg, batch, err)
				}
			}
			checkConsistent(t, db)
			return
		}
		if len(res.InsertedIDs) != len(batch.Inserts) {
			t.Fatalf("%d inserts, %d assigned ids", len(batch.Inserts), len(res.InsertedIDs))
		}
		for rel, ids := range res.Inserted {
			if !ascending(ids) {
				t.Fatalf("Inserted[%s] not strictly ascending: %v", rel, ids)
			}
		}
		for rel, ids := range res.Deleted {
			if !ascending(ids) {
				t.Fatalf("Deleted[%s] not strictly ascending: %v", rel, ids)
			}
		}
		for rel := range batch.Relations() {
			r := db.Relation(rel)
			if r == nil {
				t.Fatalf("accepted batch touches unknown relation %s", rel)
			}
			if v, ok := res.Versions[rel]; !ok || v != r.Version() {
				t.Fatalf("Versions[%s] = %d,%v; relation says %d", rel, v, ok, r.Version())
			}
		}
		for i, r := range db.Relations {
			if r.Version() < versions[i] {
				t.Fatalf("%s version moved backwards", r.Name)
			}
		}
		checkConsistent(t, db)
	})
}
