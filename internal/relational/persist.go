package relational

import (
	"bufio"
	"encoding/gob"
	"fmt"
	"io"
	"os"
)

// relationWire is the persisted form of a Relation: schema plus tuples.
// Indexes are rebuilt on load — they are derivable and rebuilding keeps the
// file format small and forward-compatible.
type relationWire struct {
	Name    string
	Columns []Column
	PKCol   string
	FKs     []ForeignKey
	Tuples  []Tuple
}

type dbWire struct {
	Name      string
	Relations []relationWire
}

// Encode serializes the database with encoding/gob. The format is
// self-describing; DBScores are not persisted (they are derived state owned
// by the ranking layer, see rank.Store). Tombstoned tuples are compacted
// away — reloading a mutated database assigns fresh, dense TupleIDs, never
// resurrects deleted rows.
func (db *DB) Encode(w io.Writer) error {
	wire := dbWire{Name: db.Name}
	for _, r := range db.Relations {
		tuples := r.Tuples
		if r.tombstones > 0 {
			tuples = make([]Tuple, 0, r.Live())
			for id, t := range r.Tuples {
				if !r.Deleted(TupleID(id)) {
					tuples = append(tuples, t)
				}
			}
		}
		wire.Relations = append(wire.Relations, relationWire{
			Name:    r.Name,
			Columns: r.Columns,
			PKCol:   r.Columns[r.PKCol].Name,
			FKs:     r.FKs,
			Tuples:  tuples,
		})
	}
	return gob.NewEncoder(w).Encode(&wire)
}

// ReadDB deserializes a database written by Encode and rebuilds all
// indexes.
func ReadDB(rd io.Reader) (*DB, error) {
	var wire dbWire
	if err := gob.NewDecoder(rd).Decode(&wire); err != nil {
		return nil, fmt.Errorf("decode db: %w", err)
	}
	db := NewDB(wire.Name)
	for _, rw := range wire.Relations {
		rel, err := NewRelation(rw.Name, rw.Columns, rw.PKCol, rw.FKs)
		if err != nil {
			return nil, fmt.Errorf("rebuild relation %s: %w", rw.Name, err)
		}
		for _, t := range rw.Tuples {
			if _, err := rel.Insert(t); err != nil {
				return nil, fmt.Errorf("reload relation %s: %w", rw.Name, err)
			}
		}
		if err := db.AddRelation(rel); err != nil {
			return nil, err
		}
	}
	return db, nil
}

// SaveFile writes the database to path atomically (write temp, rename).
func (db *DB) SaveFile(path string) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	bw := bufio.NewWriter(f)
	if err := db.Encode(bw); err != nil {
		_ = f.Close()
		_ = os.Remove(tmp)
		return err
	}
	if err := bw.Flush(); err != nil {
		_ = f.Close()
		_ = os.Remove(tmp)
		return fmt.Errorf("flush %s: %w", tmp, err)
	}
	// Fsync before the rename: without it a crash can publish the new name
	// pointing at partially-persisted content.
	if err := f.Sync(); err != nil {
		_ = f.Close()
		_ = os.Remove(tmp)
		return fmt.Errorf("sync %s: %w", tmp, err)
	}
	if err := f.Close(); err != nil {
		_ = os.Remove(tmp)
		return fmt.Errorf("close %s: %w", tmp, err)
	}
	return os.Rename(tmp, path)
}

// LoadFile reads a database previously written with SaveFile.
func LoadFile(path string) (*DB, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadDB(bufio.NewReader(f))
}
