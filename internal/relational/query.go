package relational

import "sort"

// Scores holds one global-importance score per tuple of a relation, indexed
// by TupleID. Scores are produced by the ranking layer (ObjectRank or
// ValueRank) and kept outside the storage engine because a database has one
// set of tuples but many importance settings (GA1-d1, GA1-d2, ...).
type Scores []float64

// DBScores maps relation name to its per-tuple scores under one ranking
// setting.
type DBScores map[string]Scores

// MaxScore returns the maximum score in s, or 0 for an empty relation. It is
// the global statistic behind the paper's max(Ri) annotation (Def. 2).
func (s Scores) MaxScore() float64 {
	m := 0.0
	for _, v := range s {
		if v > m {
			m = v
		}
	}
	return m
}

// JoinChildren returns, in insertion order, the tuples of r whose foreign
// key fkOrd equals key: the paper's Ri(tj) extraction
// "SELECT * FROM Ri WHERE tj.ID = Ri.ID" (Alg. 5 line 6). One database
// access is charged.
func (db *DB) JoinChildren(r *Relation, fkOrd int, key int64) []TupleID {
	db.accesses.Add(1)
	return r.fkIndex[fkOrd][key]
}

// LookupParent resolves the M:1 side of a join: the single tuple in parent
// referenced by the FK value key. One access is charged.
func (db *DB) LookupParent(parent *Relation, key int64) (TupleID, bool) {
	db.accesses.Add(1)
	id, ok := parent.LookupPK(key)
	return id, ok
}

// OrderedFKIndex is a foreign-key index whose posting lists are sorted by
// descending tuple score (ties broken by ascending TupleID for determinism).
// It supports Avoidance Condition 2 of the prelim-l generation (Alg. 4 line
// 10): extracting only the up-to-l joining tuples whose local importance
// exceeds the current largest-l, without computing the complete join.
//
// Because the local importance of every tuple of a relation is its global
// score times the relation's (constant) affinity, ordering by global score
// is identical to ordering by local importance, so one index per
// (relation, FK, ranking-setting) serves all affinity values.
type OrderedFKIndex struct {
	rel    *Relation
	fkOrd  int
	scores Scores
	lists  map[int64][]TupleID
}

// BuildOrderedFKIndex sorts every posting list of the given FK of r by
// descending score.
func BuildOrderedFKIndex(r *Relation, fkOrd int, scores Scores) *OrderedFKIndex {
	idx := &OrderedFKIndex{
		rel:    r,
		fkOrd:  fkOrd,
		scores: scores,
		lists:  make(map[int64][]TupleID, len(r.fkIndex[fkOrd])),
	}
	for key, ids := range r.fkIndex[fkOrd] {
		sorted := make([]TupleID, len(ids))
		copy(sorted, ids)
		sort.Slice(sorted, func(a, b int) bool {
			sa, sb := scores[sorted[a]], scores[sorted[b]]
			if sa != sb {
				return sa > sb
			}
			return sorted[a] < sorted[b]
		})
		idx.lists[key] = sorted
	}
	return idx
}

// TopL returns up to limit tuples joining key whose global score is strictly
// greater than minScore, in descending score order. One access is charged to
// the database even when the result is empty — the paper notes Avoidance
// Condition 2 "still requires an I/O access even when it returns no results"
// (§5.3).
func (idx *OrderedFKIndex) TopL(db *DB, key int64, minScore float64, limit int) []TupleID {
	db.accesses.Add(1)
	list := idx.lists[key]
	var out []TupleID
	for _, id := range list {
		if len(out) >= limit {
			break
		}
		if idx.scores[id] <= minScore {
			break // sorted descending: nothing further qualifies
		}
		out = append(out, id)
	}
	return out
}

// ScanEqInt returns, in TupleID order, all tuples of r whose integer column
// col equals v (a full scan; used only by tests and small tools — keyword
// lookup goes through the inverted index).
func (db *DB) ScanEqInt(r *Relation, col int, v int64) []TupleID {
	db.accesses.Add(1)
	var out []TupleID
	for id, t := range r.Tuples {
		if !r.Deleted(TupleID(id)) && t[col].Kind == KindInt && t[col].Int == v {
			out = append(out, TupleID(id))
		}
	}
	return out
}

// ScanEqStr returns, in TupleID order, all tuples of r whose string column
// col equals v.
func (db *DB) ScanEqStr(r *Relation, col int, v string) []TupleID {
	db.accesses.Add(1)
	var out []TupleID
	for id, t := range r.Tuples {
		if !r.Deleted(TupleID(id)) && t[col].Kind == KindString && t[col].Str == v {
			out = append(out, TupleID(id))
		}
	}
	return out
}

// Accesses returns the number of extraction operations charged so far.
func (db *DB) Accesses() int64 { return db.accesses.Load() }

// ChargeAccess charges one extraction to the database, for access paths
// implemented outside this package (e.g. the junction hop's second join).
func (db *DB) ChargeAccess() { db.accesses.Add(1) }

// ResetAccesses zeroes the access counter and returns its previous value.
func (db *DB) ResetAccesses() int64 {
	return db.accesses.Swap(0)
}
