package relational

import (
	"testing"
)

// compactFixture builds Parent <- Child with a few tuples and tombstones
// parents 1 and 3 (after retracting their children).
func compactFixture(t *testing.T) *DB {
	t.Helper()
	db := NewDB("compact")
	parent := MustNewRelation("Parent",
		[]Column{{Name: "id", Kind: KindInt}, {Name: "name", Kind: KindString}},
		"id", nil)
	child := MustNewRelation("Child",
		[]Column{{Name: "id", Kind: KindInt}, {Name: "parent", Kind: KindInt}},
		"id", []ForeignKey{{Column: "parent", Ref: "Parent"}})
	db.MustAddRelation(parent)
	db.MustAddRelation(child)
	for i := int64(1); i <= 5; i++ {
		parent.MustInsert(Tuple{IntVal(i), StrVal("p")})
	}
	// children of parents 2, 4, 5 only, so 1 and 3 are deletable
	child.MustInsert(Tuple{IntVal(10), IntVal(2)})
	child.MustInsert(Tuple{IntVal(11), IntVal(4)})
	child.MustInsert(Tuple{IntVal(12), IntVal(2)})
	if _, err := db.Apply(Batch{Deletes: []DeleteOp{
		{Rel: "Parent", PK: 1},
		{Rel: "Parent", PK: 3},
	}}); err != nil {
		t.Fatalf("setup deletes: %v", err)
	}
	return db
}

func TestCompactRemapsEverything(t *testing.T) {
	db := compactFixture(t)
	parent := db.Relation("Parent")
	v0 := parent.Version()
	remap := parent.Compact()
	if remap == nil {
		t.Fatal("Compact returned nil despite tombstones")
	}
	want := []TupleID{-1, 0, -1, 1, 2} // pk 2,4,5 survive in order
	for i, w := range want {
		if remap[i] != w {
			t.Fatalf("remap = %v, want %v", remap, want)
		}
	}
	if parent.Len() != 3 || parent.Live() != 3 || parent.Tombstones() != 0 {
		t.Fatalf("post-compact shape: len=%d live=%d tombstones=%d", parent.Len(), parent.Live(), parent.Tombstones())
	}
	if parent.Version() <= v0 {
		t.Fatal("Compact did not bump the version")
	}
	// PK lookups land on the new slots and content followed the move.
	for i, pk := range []int64{2, 4, 5} {
		id, ok := parent.LookupPK(pk)
		if !ok || id != TupleID(i) {
			t.Fatalf("LookupPK(%d) = %v,%v, want %d", pk, id, ok, i)
		}
		if parent.PK(id) != pk {
			t.Fatalf("slot %d holds pk %d, want %d", id, parent.PK(id), pk)
		}
	}
	if _, ok := parent.LookupPK(1); ok {
		t.Fatal("reclaimed pk 1 still resolves")
	}
	if errs := db.Validate(); len(errs) > 0 {
		t.Fatalf("post-compact integrity: %v", errs)
	}
	// FK posting lists of the referencing relation are untouched (they key
	// by PK value), and the compacted relation's own fkIndex would have
	// been remapped — exercise via a relation owning FKs:
	child := db.Relation("Child")
	if n := db.referencers("Parent", 2); n != 2 {
		t.Fatalf("referencers(Parent,2) = %d, want 2", n)
	}
	// Deleting a child then compacting the child relation remaps its own
	// fkIndex entries.
	if _, err := db.Apply(Batch{Deletes: []DeleteOp{{Rel: "Child", PK: 10}}}); err != nil {
		t.Fatalf("delete child: %v", err)
	}
	cr := child.Compact()
	if cr == nil {
		t.Fatal("child Compact returned nil")
	}
	ids := child.fkIndex[0][2]
	if len(ids) != 1 || ids[0] != 1 || child.PK(ids[0]) != 12 {
		t.Fatalf("child fkIndex[parent=2] = %v after compact", ids)
	}
	if errs := db.Validate(); len(errs) > 0 {
		t.Fatalf("post-child-compact integrity: %v", errs)
	}
}

func TestCompactNoTombstonesIsNoop(t *testing.T) {
	db := compactFixture(t)
	child := db.Relation("Child")
	if remap := child.Compact(); remap != nil {
		t.Fatalf("Compact without tombstones returned %v", remap)
	}
}

// TestCompactThenMutate proves the relation keeps working after a compact:
// inserts take dense slots, deletes tombstone again, batches roll back
// cleanly.
func TestCompactThenMutate(t *testing.T) {
	db := compactFixture(t)
	parent := db.Relation("Parent")
	parent.Compact()
	res, err := db.Apply(Batch{Inserts: []InsertOp{
		{Rel: "Parent", Tuple: Tuple{IntVal(99), StrVal("fresh")}},
	}})
	if err != nil {
		t.Fatalf("insert after compact: %v", err)
	}
	if got := res.InsertedIDs[0]; got != 3 {
		t.Fatalf("insert landed at %d, want dense slot 3", got)
	}
	if _, err := db.Apply(Batch{Deletes: []DeleteOp{{Rel: "Parent", PK: 99}}}); err != nil {
		t.Fatalf("delete after compact: %v", err)
	}
	if parent.Tombstones() != 1 {
		t.Fatalf("tombstones = %d, want 1", parent.Tombstones())
	}
}
