package relational

import "testing"

func TestValueString(t *testing.T) {
	tests := []struct {
		v    Value
		want string
	}{
		{IntVal(42), "42"},
		{IntVal(-3), "-3"},
		{FloatVal(2.5), "2.50"},
		{StrVal("SIGMOD"), "SIGMOD"},
		{Value{Kind: Kind(9)}, "?"},
	}
	for _, tc := range tests {
		if got := tc.v.String(); got != tc.want {
			t.Errorf("%#v.String() = %q, want %q", tc.v, got, tc.want)
		}
	}
}

func TestKindString(t *testing.T) {
	tests := []struct {
		k    Kind
		want string
	}{
		{KindInt, "INTEGER"},
		{KindFloat, "FLOAT"},
		{KindString, "VARCHAR"},
		{Kind(7), "Kind(7)"},
	}
	for _, tc := range tests {
		if got := tc.k.String(); got != tc.want {
			t.Errorf("Kind(%d).String() = %q, want %q", tc.k, got, tc.want)
		}
	}
}

func TestValueEqual(t *testing.T) {
	tests := []struct {
		a, b Value
		want bool
	}{
		{IntVal(1), IntVal(1), true},
		{IntVal(1), IntVal(2), false},
		{FloatVal(1.5), FloatVal(1.5), true},
		{FloatVal(1.5), FloatVal(2.5), false},
		{StrVal("a"), StrVal("a"), true},
		{StrVal("a"), StrVal("b"), false},
		{IntVal(1), FloatVal(1), false},
		{IntVal(1), StrVal("1"), false},
	}
	for _, tc := range tests {
		if got := tc.a.Equal(tc.b); got != tc.want {
			t.Errorf("Equal(%v,%v) = %v, want %v", tc.a, tc.b, got, tc.want)
		}
	}
}

func TestValueLess(t *testing.T) {
	tests := []struct {
		a, b Value
		want bool
	}{
		{IntVal(1), IntVal(2), true},
		{IntVal(2), IntVal(1), false},
		{FloatVal(1), FloatVal(2), true},
		{StrVal("a"), StrVal("b"), true},
		{StrVal("b"), StrVal("a"), false},
		{IntVal(5), FloatVal(0), true}, // kind ordering: int < float
	}
	for _, tc := range tests {
		if got := tc.a.Less(tc.b); got != tc.want {
			t.Errorf("Less(%v,%v) = %v, want %v", tc.a, tc.b, got, tc.want)
		}
	}
}
