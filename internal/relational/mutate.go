package relational

import (
	"fmt"
	"sort"
)

// InsertOp is one tuple insertion in a Batch.
type InsertOp struct {
	Rel   string
	Tuple Tuple
}

// DeleteOp names one tuple to delete by primary key.
type DeleteOp struct {
	Rel string
	PK  int64
}

// Batch is an atomic group of mutations. Deletes apply first, in order,
// then inserts, in order; within a batch this lets a caller retract
// referencing tuples before their target (delete Writes rows, then the
// Paper) and insert targets before their referers (insert a Paper, then the
// Writes rows naming it).
type Batch struct {
	Deletes []DeleteOp
	Inserts []InsertOp
}

// Empty reports whether the batch carries no operations.
func (b Batch) Empty() bool { return len(b.Deletes) == 0 && len(b.Inserts) == 0 }

// Relations returns the set of relation names the batch touches.
func (b Batch) Relations() map[string]bool {
	out := make(map[string]bool)
	for _, d := range b.Deletes {
		out[d.Rel] = true
	}
	for _, i := range b.Inserts {
		out[i.Rel] = true
	}
	return out
}

// BatchResult reports what one successful Apply did, keyed the way derived
// structures (keyword index deltas, cache epochs) consume it.
type BatchResult struct {
	// InsertedIDs holds the TupleID assigned to each insert, parallel to
	// Batch.Inserts.
	InsertedIDs []TupleID
	// Inserted and Deleted group the touched TupleIDs per relation, each in
	// ascending order.
	Inserted map[string][]TupleID
	Deleted  map[string][]TupleID
	// Versions snapshots the post-batch version of every touched relation.
	Versions map[string]uint64
}

// undoRecord is one entry of Apply's rollback log.
type undoRecord struct {
	rel    *Relation
	id     TupleID
	insert bool // true: undo an insert; false: restore a delete
}

// Apply executes a batch atomically: either every operation succeeds or the
// database is returned to its exact pre-batch state (a failed batch still
// bumps the touched relations' versions, which only ever move forward).
//
// Beyond the per-relation checks of Insert and Delete, Apply enforces
// referential integrity: a delete is rejected while live tuples still
// reference the target, and an insert's foreign keys must resolve to live
// tuples at the time it applies.
func (db *DB) Apply(b Batch) (BatchResult, error) {
	res := BatchResult{
		Inserted: make(map[string][]TupleID),
		Deleted:  make(map[string][]TupleID),
		Versions: make(map[string]uint64),
	}
	var log []undoRecord
	rollback := func() {
		for i := len(log) - 1; i >= 0; i-- {
			u := log[i]
			if u.insert {
				u.rel.undoInsert(u.id)
			} else {
				u.rel.restore(u.id)
			}
		}
	}
	for _, d := range b.Deletes {
		r := db.Relation(d.Rel)
		if r == nil {
			rollback()
			return BatchResult{}, fmt.Errorf("relational: delete: unknown relation %q", d.Rel)
		}
		id, ok := r.LookupPK(d.PK)
		if !ok {
			rollback()
			return BatchResult{}, fmt.Errorf("relational: delete: no live tuple with pk %d in %s", d.PK, d.Rel)
		}
		if n := db.referencers(d.Rel, d.PK); n > 0 {
			rollback()
			return BatchResult{}, fmt.Errorf("relational: delete: %s pk %d still referenced by %d live tuple(s)", d.Rel, d.PK, n)
		}
		if err := r.Delete(id); err != nil {
			rollback()
			return BatchResult{}, err
		}
		log = append(log, undoRecord{rel: r, id: id})
		res.Deleted[d.Rel] = append(res.Deleted[d.Rel], id)
	}
	for _, in := range b.Inserts {
		r := db.Relation(in.Rel)
		if r == nil {
			rollback()
			return BatchResult{}, fmt.Errorf("relational: insert: unknown relation %q", in.Rel)
		}
		if err := db.checkFKs(r, in.Tuple); err != nil {
			rollback()
			return BatchResult{}, err
		}
		id, err := r.Insert(in.Tuple)
		if err != nil {
			rollback()
			return BatchResult{}, err
		}
		log = append(log, undoRecord{rel: r, id: id, insert: true})
		res.InsertedIDs = append(res.InsertedIDs, id)
		res.Inserted[in.Rel] = append(res.Inserted[in.Rel], id)
	}
	// Per-relation id lists are a contract: ascending, whatever order the
	// request named its operations in. Incremental index maintenance merges
	// these lists against ascending posting lists and silently corrupts on
	// unsorted input.
	for _, m := range []map[string][]TupleID{res.Deleted, res.Inserted} {
		for rel, ids := range m {
			sort.Slice(ids, func(a, b int) bool { return ids[a] < ids[b] })
			m[rel] = ids
		}
	}
	for rel := range b.Relations() {
		if r := db.Relation(rel); r != nil {
			res.Versions[rel] = r.Version()
		}
	}
	return res, nil
}

// checkFKs verifies every foreign-key value of t resolves to a live tuple.
// Insert itself doesn't enforce this (bulk loaders validate once at the
// end); the mutation path must, or OS extraction would chase dangling keys.
func (db *DB) checkFKs(r *Relation, t Tuple) error {
	if len(t) != len(r.Columns) {
		return fmt.Errorf("relation %s: tuple arity %d, want %d", r.Name, len(t), len(r.Columns))
	}
	for fi, fk := range r.FKs {
		ref := db.Relation(fk.Ref)
		if ref == nil {
			return fmt.Errorf("relation %s: fk %d references unknown relation %s", r.Name, fi, fk.Ref)
		}
		key := t[r.colByName[fk.Column]].Int
		if _, ok := ref.LookupPK(key); !ok {
			return fmt.Errorf("relational: insert into %s: %s=%d has no live match in %s", r.Name, fk.Column, key, fk.Ref)
		}
	}
	return nil
}

// referencers counts live tuples (in any relation) whose foreign key points
// at (rel, pk). FK posting lists hold live tuples only, so their lengths
// are the answer.
func (db *DB) referencers(rel string, pk int64) int {
	n := 0
	for _, r := range db.Relations {
		for fi, fk := range r.FKs {
			if fk.Ref == rel {
				n += len(r.fkIndex[fi][pk])
			}
		}
	}
	return n
}

// ReferencingTuples lists the live tuples whose foreign keys point at
// (rel, pk), grouped by owning relation in registration order (ids
// ascending, deduplicated — a tuple referencing pk through two FKs appears
// once). Callers assembling a cascade delete walk this to schedule
// referencers ahead of their target within one batch.
func (db *DB) ReferencingTuples(rel string, pk int64) []RelTuples {
	var out []RelTuples
	for _, r := range db.Relations {
		var ids []TupleID
		for fi, fk := range r.FKs {
			if fk.Ref != rel {
				continue
			}
			for _, id := range r.fkIndex[fi][pk] {
				ids = insertIDUnique(ids, id)
			}
		}
		if len(ids) > 0 {
			out = append(out, RelTuples{Rel: r.Name, IDs: ids})
		}
	}
	return out
}

// RelTuples names a group of tuples of one relation.
type RelTuples struct {
	Rel string
	IDs []TupleID
}

// insertIDUnique adds id to an ascending list unless already present.
func insertIDUnique(list []TupleID, id TupleID) []TupleID {
	i := sort.Search(len(list), func(i int) bool { return list[i] >= id })
	if i < len(list) && list[i] == id {
		return list
	}
	return insertID(list, id)
}
