package relational

import (
	"strings"
	"testing"
)

func personRel(t *testing.T) *Relation {
	t.Helper()
	r, err := NewRelation("Person",
		[]Column{
			{Name: "id", Kind: KindInt, Affinity: 1},
			{Name: "name", Kind: KindString, Affinity: 1},
			{Name: "age", Kind: KindInt, Affinity: 0.5},
		},
		"id", nil)
	if err != nil {
		t.Fatalf("NewRelation: %v", err)
	}
	return r
}

func petRel(t *testing.T) *Relation {
	t.Helper()
	r, err := NewRelation("Pet",
		[]Column{
			{Name: "id", Kind: KindInt, Affinity: 1},
			{Name: "owner", Kind: KindInt, Affinity: 1},
			{Name: "species", Kind: KindString, Affinity: 1},
		},
		"id", []ForeignKey{{Column: "owner", Ref: "Person"}})
	if err != nil {
		t.Fatalf("NewRelation: %v", err)
	}
	return r
}

func TestNewRelationErrors(t *testing.T) {
	cols := []Column{{Name: "id", Kind: KindInt}, {Name: "x", Kind: KindString}}
	tests := []struct {
		name    string
		cols    []Column
		pk      string
		fks     []ForeignKey
		wantSub string
	}{
		{"missing pk", cols, "nope", nil, "not found"},
		{"pk not int", cols, "x", nil, "must be INTEGER"},
		{"dup column", []Column{{Name: "id", Kind: KindInt}, {Name: "id", Kind: KindInt}}, "id", nil, "duplicate column"},
		{"fk missing col", cols, "id", []ForeignKey{{Column: "nope", Ref: "Other"}}, "not found"},
		{"fk not int", cols, "id", []ForeignKey{{Column: "x", Ref: "Other"}}, "must be INTEGER"},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			_, err := NewRelation("R", tc.cols, tc.pk, tc.fks)
			if err == nil || !strings.Contains(err.Error(), tc.wantSub) {
				t.Fatalf("got err %v, want substring %q", err, tc.wantSub)
			}
		})
	}
}

func TestInsertAndLookup(t *testing.T) {
	r := personRel(t)
	id, err := r.Insert(Tuple{IntVal(7), StrVal("Ada"), IntVal(36)})
	if err != nil {
		t.Fatalf("Insert: %v", err)
	}
	if id != 0 {
		t.Errorf("first TupleID = %d, want 0", id)
	}
	got, ok := r.LookupPK(7)
	if !ok || got != id {
		t.Errorf("LookupPK(7) = %d,%v; want %d,true", got, ok, id)
	}
	if pk := r.PK(id); pk != 7 {
		t.Errorf("PK(%d) = %d, want 7", id, pk)
	}
	if _, ok := r.LookupPK(8); ok {
		t.Error("LookupPK(8) should miss")
	}
	if r.Len() != 1 {
		t.Errorf("Len = %d, want 1", r.Len())
	}
}

func TestInsertErrors(t *testing.T) {
	r := personRel(t)
	r.MustInsert(Tuple{IntVal(1), StrVal("Ada"), IntVal(36)})

	if _, err := r.Insert(Tuple{IntVal(1), StrVal("Bob"), IntVal(20)}); err == nil {
		t.Error("duplicate PK accepted")
	}
	if _, err := r.Insert(Tuple{IntVal(2), StrVal("Bob")}); err == nil {
		t.Error("wrong arity accepted")
	}
	if _, err := r.Insert(Tuple{IntVal(2), IntVal(5), IntVal(20)}); err == nil {
		t.Error("wrong kind accepted")
	}
}

func TestMustInsertPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustInsert did not panic on bad tuple")
		}
	}()
	r := personRel(t)
	r.MustInsert(Tuple{IntVal(1)})
}

func TestColIndexAndFKIndexOf(t *testing.T) {
	r := petRel(t)
	if i := r.ColIndex("species"); i != 2 {
		t.Errorf("ColIndex(species) = %d, want 2", i)
	}
	if i := r.ColIndex("nope"); i != -1 {
		t.Errorf("ColIndex(nope) = %d, want -1", i)
	}
	if i := r.FKIndexOf("owner"); i != 0 {
		t.Errorf("FKIndexOf(owner) = %d, want 0", i)
	}
	if i := r.FKIndexOf("species"); i != -1 {
		t.Errorf("FKIndexOf(species) = %d, want -1", i)
	}
}

func buildPetDB(t *testing.T) *DB {
	t.Helper()
	db := NewDB("pets")
	person := personRel(t)
	pet := petRel(t)
	db.MustAddRelation(person)
	db.MustAddRelation(pet)
	person.MustInsert(Tuple{IntVal(1), StrVal("Ada"), IntVal(36)})
	person.MustInsert(Tuple{IntVal(2), StrVal("Bob"), IntVal(20)})
	pet.MustInsert(Tuple{IntVal(10), IntVal(1), StrVal("cat")})
	pet.MustInsert(Tuple{IntVal(11), IntVal(1), StrVal("dog")})
	pet.MustInsert(Tuple{IntVal(12), IntVal(2), StrVal("fish")})
	return db
}

func TestDBRelationRegistry(t *testing.T) {
	db := buildPetDB(t)
	if db.Relation("Person") == nil || db.Relation("Pet") == nil {
		t.Fatal("registered relations not found")
	}
	if db.Relation("Nope") != nil {
		t.Error("unknown relation resolved")
	}
	if i := db.RelIndex("Pet"); i != 1 {
		t.Errorf("RelIndex(Pet) = %d, want 1", i)
	}
	if i := db.RelIndex("Nope"); i != -1 {
		t.Errorf("RelIndex(Nope) = %d, want -1", i)
	}
	if n := db.TotalTuples(); n != 5 {
		t.Errorf("TotalTuples = %d, want 5", n)
	}
	if err := db.AddRelation(db.Relation("Pet")); err == nil {
		t.Error("duplicate relation registration accepted")
	}
}

func TestValidate(t *testing.T) {
	db := buildPetDB(t)
	if errs := db.Validate(); len(errs) != 0 {
		t.Fatalf("valid db reported errors: %v", errs)
	}
	// Dangling FK.
	db.Relation("Pet").MustInsert(Tuple{IntVal(13), IntVal(99), StrVal("owl")})
	if errs := db.Validate(); len(errs) != 1 {
		t.Fatalf("want 1 integrity error, got %v", errs)
	}
}

func TestValidateUnknownRef(t *testing.T) {
	db := NewDB("bad")
	orphan := MustNewRelation("Orphan",
		[]Column{{Name: "id", Kind: KindInt}, {Name: "ref", Kind: KindInt}},
		"id", []ForeignKey{{Column: "ref", Ref: "Ghost"}})
	db.MustAddRelation(orphan)
	orphan.MustInsert(Tuple{IntVal(1), IntVal(1)})
	errs := db.Validate()
	if len(errs) != 1 || !strings.Contains(errs[0].Error(), "unknown relation") {
		t.Fatalf("want unknown-relation error, got %v", errs)
	}
}
