// Package relational implements the in-memory relational storage engine
// underlying the size-l Object Summary system. It is the substrate the paper
// ran on MySQL: typed relations with primary/foreign keys, hash indexes for
// key lookups and joins, and an importance-ordered foreign-key index that
// supports the paper's Avoidance Condition 2 extraction
//
//	SELECT * TOP l FROM Ri WHERE tj.ID = Ri.ID AND Ri.li > largest-l
//
// as a bounded prefix scan instead of a full join.
//
// The engine is deliberately small and dependency-free (stdlib only), but it
// is a real engine: all OS generation paths that the paper runs "directly
// from the database" go through this package's scan/join operators and are
// charged to an access counter so experiments can report I/O-equivalent
// costs.
//
// # Invariants
//
// The mutation contract below is what every derived structure (keyword
// postings, data graph, compiled rank plans, score vectors) leans on;
// relational.DB.Apply is fuzzed (FuzzApply) against it.
//
//   - Deletes are tombstones: the slot AND its content stay until a
//     physical compaction, so TupleIDs, data-graph node ids and
//     score-vector positions remain stable, and maintenance code can still
//     read a deleted tuple's values (to retract postings and mirror
//     edges). The tuple leaves every index immediately: PK/FK lookups and
//     scans see live tuples only.
//   - Insert ids are append-only: a fresh tuple always takes a slot larger
//     than every existing id of its relation. Delete-then-reinsert of the
//     same primary key yields a fresh slot; the PK index points at the
//     live one.
//   - DB.Apply is atomic — deletes first, then inserts, each in request
//     order, with referential integrity enforced both directions; any
//     failure rolls the store back to its exact pre-batch state (versions
//     still advance).
//   - BatchResult's per-relation Inserted/Deleted lists are ASCENDING
//     regardless of request order. Incremental index maintenance merges
//     them against ascending posting lists and silently corrupts on
//     unsorted input; this is a load-bearing contract, not a convenience.
//   - Relation.Compact returns a monotonic old→new TupleID remap (-1 for
//     reclaimed slots) and fixes the PK/FK indexes itself; the caller must
//     thread the remap through every other TupleID holder in the same
//     critical section — keyword postings, normalized and raw score
//     vectors, in-flight batch results, epochs, and the data graph — or
//     drop them.
//   - Relation.Version only moves forward, including on failed batches.
package relational
