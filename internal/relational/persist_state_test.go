package relational

import (
	"bytes"
	"strings"
	"testing"
)

// mutatePetDB drives the pet DB through a delete / re-insert history that
// leaves tombstones, a reused primary key and bumped version counters — the
// physical shape EncodeState must reproduce exactly.
func mutatePetDB(t *testing.T) *DB {
	t.Helper()
	db := buildPetDB(t)
	pet := db.Relation("Pet")
	// Tombstone slot 1 (PK 11), then re-insert PK 11 as a new slot: the
	// tombstone and the live tuple now share a primary key.
	if err := pet.Delete(1); err != nil {
		t.Fatal(err)
	}
	pet.MustInsert(Tuple{IntVal(11), IntVal(2), StrVal("parrot")})
	pet.MustInsert(Tuple{IntVal(13), IntVal(1), StrVal("gecko")})
	if err := pet.Delete(4); err != nil {
		t.Fatal(err)
	}
	return db
}

func TestStateRoundTripPreservesLayout(t *testing.T) {
	db := mutatePetDB(t)
	var buf bytes.Buffer
	if err := db.EncodeState(&buf); err != nil {
		t.Fatalf("EncodeState: %v", err)
	}
	got, err := ReadDBState(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("ReadDBState: %v", err)
	}
	for i, r := range db.Relations {
		gr := got.Relations[i]
		if gr.Name != r.Name {
			t.Fatalf("relation %d = %s, want %s", i, gr.Name, r.Name)
		}
		if gr.Len() != r.Len() || gr.Live() != r.Live() || gr.Tombstones() != r.Tombstones() {
			t.Errorf("%s: len/live/tombstones = %d/%d/%d, want %d/%d/%d",
				r.Name, gr.Len(), gr.Live(), gr.Tombstones(), r.Len(), r.Live(), r.Tombstones())
		}
		if gr.Version() != r.Version() {
			t.Errorf("%s: version = %d, want %d", r.Name, gr.Version(), r.Version())
		}
		for id := range r.Tuples {
			if gr.Deleted(TupleID(id)) != r.Deleted(TupleID(id)) {
				t.Errorf("%s slot %d: tombstone mask differs", r.Name, id)
			}
		}
	}
	// The reused PK must resolve to the live (later) slot, not the tombstone.
	pet := got.Relation("Pet")
	if id, ok := pet.LookupPK(11); !ok || id != 3 {
		t.Errorf("LookupPK(11) = %d,%v, want slot 3", id, ok)
	}
	if _, ok := pet.LookupPK(13); ok {
		t.Error("tombstoned PK 13 resolves after reload")
	}
	// Byte-determinism: re-encoding the decoded DB reproduces the original
	// bytes — the equality oracle the crash harness relies on.
	var buf2 bytes.Buffer
	if err := got.EncodeState(&buf2); err != nil {
		t.Fatalf("re-EncodeState: %v", err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Error("EncodeState not deterministic across a round trip")
	}
}

func TestStateRoundTripRejectsBadTombstones(t *testing.T) {
	if _, err := ReadDBState(strings.NewReader("not a gob stream")); err == nil || !strings.Contains(err.Error(), "decode db state") {
		t.Fatalf("garbage err = %v, want decode error", err)
	}
}
