package relational

import (
	"bytes"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

func TestRoundTripWire(t *testing.T) {
	db := buildPetDB(t)
	var buf bytes.Buffer
	if err := db.Encode(&buf); err != nil {
		t.Fatalf("Encode: %v", err)
	}
	got, err := ReadDB(&buf)
	if err != nil {
		t.Fatalf("ReadDB: %v", err)
	}
	if got.Name != db.Name {
		t.Errorf("Name = %q, want %q", got.Name, db.Name)
	}
	if len(got.Relations) != len(db.Relations) {
		t.Fatalf("relation count = %d, want %d", len(got.Relations), len(db.Relations))
	}
	for i, r := range db.Relations {
		gr := got.Relations[i]
		if gr.Name != r.Name || !reflect.DeepEqual(gr.Tuples, r.Tuples) {
			t.Errorf("relation %s round-trip mismatch", r.Name)
		}
		if gr.PKCol != r.PKCol || !reflect.DeepEqual(gr.FKs, r.FKs) {
			t.Errorf("relation %s schema mismatch", r.Name)
		}
	}
	// Indexes must be rebuilt and functional.
	pet := got.Relation("Pet")
	ids := got.JoinChildren(pet, 0, 1)
	if len(ids) != 2 {
		t.Errorf("rebuilt FK index: JoinChildren = %v, want 2 tuples", ids)
	}
	if _, ok := pet.LookupPK(12); !ok {
		t.Error("rebuilt PK index misses key 12")
	}
}

func TestSaveLoadFile(t *testing.T) {
	db := buildPetDB(t)
	path := filepath.Join(t.TempDir(), "pets.gob")
	if err := db.SaveFile(path); err != nil {
		t.Fatalf("SaveFile: %v", err)
	}
	got, err := LoadFile(path)
	if err != nil {
		t.Fatalf("LoadFile: %v", err)
	}
	if got.TotalTuples() != db.TotalTuples() {
		t.Errorf("TotalTuples = %d, want %d", got.TotalTuples(), db.TotalTuples())
	}
}

func TestLoadFileMissing(t *testing.T) {
	if _, err := LoadFile(filepath.Join(t.TempDir(), "nope.gob")); err == nil {
		t.Fatal("LoadFile on missing path should fail")
	}
}

func TestReadDBGarbage(t *testing.T) {
	_, err := ReadDB(strings.NewReader("not a gob stream"))
	if err == nil || !strings.Contains(err.Error(), "decode db") {
		t.Fatalf("ReadDB(garbage) err = %v, want decode error", err)
	}
}
