package relational

import (
	"reflect"
	"testing"
)

// mutableDB builds a two-relation fixture (Author 1-3, Book referencing
// Author) for mutation tests.
func mutableDB(t *testing.T) *DB {
	t.Helper()
	db := NewDB("mut")
	author := MustNewRelation("Author",
		[]Column{
			{Name: "id", Kind: KindInt},
			{Name: "name", Kind: KindString},
		}, "id", nil)
	book := MustNewRelation("Book",
		[]Column{
			{Name: "id", Kind: KindInt},
			{Name: "author", Kind: KindInt},
			{Name: "title", Kind: KindString},
		}, "id", []ForeignKey{{Column: "author", Ref: "Author"}})
	db.MustAddRelation(author)
	db.MustAddRelation(book)
	author.MustInsert(Tuple{IntVal(1), StrVal("Knuth")})
	author.MustInsert(Tuple{IntVal(2), StrVal("Dijkstra")})
	author.MustInsert(Tuple{IntVal(3), StrVal("Hopper")})
	book.MustInsert(Tuple{IntVal(10), IntVal(1), StrVal("TAOCP")})
	book.MustInsert(Tuple{IntVal(11), IntVal(2), StrVal("Discipline")})
	return db
}

func TestApplyInsertDelete(t *testing.T) {
	db := mutableDB(t)
	author := db.Relation("Author")
	book := db.Relation("Book")
	v0 := author.Version()

	res, err := db.Apply(Batch{
		Deletes: []DeleteOp{{Rel: "Book", PK: 11}, {Rel: "Author", PK: 2}},
		Inserts: []InsertOp{
			{Rel: "Author", Tuple: Tuple{IntVal(4), StrVal("Lovelace")}},
			{Rel: "Book", Tuple: Tuple{IntVal(12), IntVal(4), StrVal("Notes")}},
		},
	})
	if err != nil {
		t.Fatalf("Apply: %v", err)
	}
	if want := []TupleID{3, 2}; !reflect.DeepEqual(res.InsertedIDs, want) {
		t.Fatalf("InsertedIDs = %v, want %v", res.InsertedIDs, want)
	}
	if !author.Deleted(1) || author.Live() != 3 || author.Len() != 4 {
		t.Fatalf("author state: deleted(1)=%v live=%d len=%d", author.Deleted(1), author.Live(), author.Len())
	}
	if _, ok := author.LookupPK(2); ok {
		t.Fatal("deleted pk 2 still resolvable")
	}
	if id, ok := author.LookupPK(4); !ok || id != 3 {
		t.Fatalf("LookupPK(4) = %d,%v", id, ok)
	}
	if author.Version() == v0 {
		t.Fatal("version did not advance")
	}
	if got := res.Versions["Author"]; got != author.Version() {
		t.Fatalf("Versions[Author] = %d, want %d", got, author.Version())
	}
	// FK index of Book now lists only the live referencing tuple.
	if got := db.JoinChildren(book, 0, 4); !reflect.DeepEqual(got, []TupleID{2}) {
		t.Fatalf("JoinChildren(author=4) = %v", got)
	}
	if got := db.JoinChildren(book, 0, 2); len(got) != 0 {
		t.Fatalf("JoinChildren(author=2) = %v, want empty", got)
	}
	if errs := db.Validate(); len(errs) != 0 {
		t.Fatalf("Validate: %v", errs)
	}
}

func TestApplyRejectsReferencedDelete(t *testing.T) {
	db := mutableDB(t)
	if _, err := db.Apply(Batch{Deletes: []DeleteOp{{Rel: "Author", PK: 1}}}); err == nil {
		t.Fatal("deleting a referenced author succeeded")
	}
	// Deleting the referencing book first in the same batch is fine.
	if _, err := db.Apply(Batch{
		Deletes: []DeleteOp{{Rel: "Book", PK: 10}, {Rel: "Author", PK: 1}},
	}); err != nil {
		t.Fatalf("child-then-parent delete: %v", err)
	}
}

func TestApplyRejectsDanglingInsert(t *testing.T) {
	db := mutableDB(t)
	if _, err := db.Apply(Batch{
		Inserts: []InsertOp{{Rel: "Book", Tuple: Tuple{IntVal(12), IntVal(99), StrVal("Ghost")}}},
	}); err == nil {
		t.Fatal("insert with dangling FK succeeded")
	}
	// Inserting the referenced author earlier in the same batch is fine.
	if _, err := db.Apply(Batch{
		Inserts: []InsertOp{
			{Rel: "Author", Tuple: Tuple{IntVal(99), StrVal("New")}},
			{Rel: "Book", Tuple: Tuple{IntVal(12), IntVal(99), StrVal("Ghost")}},
		},
	}); err != nil {
		t.Fatalf("target-then-referer insert: %v", err)
	}
}

// TestApplyRollsBackAtomically drives a batch whose last operation fails
// and verifies the store returns to its exact pre-batch state.
func TestApplyRollsBackAtomically(t *testing.T) {
	db := mutableDB(t)
	author := db.Relation("Author")
	book := db.Relation("Book")
	wantAuthors := author.Len()
	wantBooks := book.Len()

	_, err := db.Apply(Batch{
		Deletes: []DeleteOp{{Rel: "Book", PK: 11}},
		Inserts: []InsertOp{
			{Rel: "Author", Tuple: Tuple{IntVal(5), StrVal("Turing")}},
			{Rel: "Book", Tuple: Tuple{IntVal(13), IntVal(5), StrVal("Computable")}},
			{Rel: "Author", Tuple: Tuple{IntVal(1), StrVal("DupKey")}}, // fails
		},
	})
	if err == nil {
		t.Fatal("batch with duplicate pk succeeded")
	}
	if author.Len() != wantAuthors || book.Len() != wantBooks {
		t.Fatalf("lengths after rollback: authors %d want %d, books %d want %d",
			author.Len(), wantAuthors, book.Len(), wantBooks)
	}
	if author.Live() != wantAuthors || book.Live() != wantBooks {
		t.Fatalf("tombstones survived rollback: %d/%d live", author.Live(), book.Live())
	}
	if _, ok := book.LookupPK(11); !ok {
		t.Fatal("rolled-back delete did not restore pk 11")
	}
	if _, ok := author.LookupPK(5); ok {
		t.Fatal("rolled-back insert left pk 5 behind")
	}
	// The restored tuple must rejoin its FK posting list in its original
	// (ascending) position.
	if got := db.JoinChildren(book, 0, 2); !reflect.DeepEqual(got, []TupleID{1}) {
		t.Fatalf("JoinChildren(author=2) after rollback = %v", got)
	}
	if errs := db.Validate(); len(errs) != 0 {
		t.Fatalf("Validate after rollback: %v", errs)
	}
}

// TestDeletePreservesFKOrder deletes a middle referencing tuple and checks
// the posting list stays ascending without it.
func TestDeletePreservesFKOrder(t *testing.T) {
	db := mutableDB(t)
	book := db.Relation("Book")
	for pk := int64(20); pk < 24; pk++ {
		book.MustInsert(Tuple{IntVal(pk), IntVal(3), StrVal("x")})
	}
	if _, err := db.Apply(Batch{Deletes: []DeleteOp{{Rel: "Book", PK: 22}}}); err != nil {
		t.Fatalf("Apply: %v", err)
	}
	want := []TupleID{2, 3, 5} // pks 20,21,23
	if got := db.JoinChildren(book, 0, 3); !reflect.DeepEqual(got, want) {
		t.Fatalf("JoinChildren(author=3) = %v, want %v", got, want)
	}
}

// TestEncodeCompactsTombstones checks persistence never resurrects deleted
// tuples.
func TestEncodeCompactsTombstones(t *testing.T) {
	db := mutableDB(t)
	if _, err := db.Apply(Batch{Deletes: []DeleteOp{{Rel: "Book", PK: 10}}}); err != nil {
		t.Fatalf("Apply: %v", err)
	}
	path := t.TempDir() + "/db.gob"
	if err := db.SaveFile(path); err != nil {
		t.Fatalf("SaveFile: %v", err)
	}
	re, err := LoadFile(path)
	if err != nil {
		t.Fatalf("LoadFile: %v", err)
	}
	book := re.Relation("Book")
	if book.Len() != 1 || book.Live() != 1 {
		t.Fatalf("reloaded Book has %d tuples (%d live), want 1 live", book.Len(), book.Live())
	}
	if _, ok := book.LookupPK(10); ok {
		t.Fatal("deleted pk 10 resurrected by reload")
	}
}

// TestApplyResultsAscendPerRelation deletes (and inserts) in descending
// request order and checks the per-relation result lists come back
// ascending — the contract incremental index maintenance merges against.
func TestApplyResultsAscendPerRelation(t *testing.T) {
	db := mutableDB(t)
	book := db.Relation("Book")
	book.MustInsert(Tuple{IntVal(20), IntVal(3), StrVal("newer")})
	res, err := db.Apply(Batch{
		Deletes: []DeleteOp{{Rel: "Book", PK: 20}, {Rel: "Book", PK: 10}}, // newer first
		Inserts: []InsertOp{
			{Rel: "Book", Tuple: Tuple{IntVal(31), IntVal(3), StrVal("a")}},
			{Rel: "Book", Tuple: Tuple{IntVal(30), IntVal(3), StrVal("b")}},
		},
	})
	if err != nil {
		t.Fatalf("Apply: %v", err)
	}
	if want := []TupleID{0, 2}; !reflect.DeepEqual(res.Deleted["Book"], want) {
		t.Fatalf("Deleted[Book] = %v, want ascending %v", res.Deleted["Book"], want)
	}
	if want := []TupleID{3, 4}; !reflect.DeepEqual(res.Inserted["Book"], want) {
		t.Fatalf("Inserted[Book] = %v, want ascending %v", res.Inserted["Book"], want)
	}
}

func TestReinsertDeletedPK(t *testing.T) {
	db := mutableDB(t)
	if _, err := db.Apply(Batch{
		Deletes: []DeleteOp{{Rel: "Book", PK: 11}},
		Inserts: []InsertOp{{Rel: "Book", Tuple: Tuple{IntVal(11), IntVal(3), StrVal("Reborn")}}},
	}); err != nil {
		t.Fatalf("delete+reinsert of same pk: %v", err)
	}
	book := db.Relation("Book")
	id, ok := book.LookupPK(11)
	if !ok || id != 2 {
		t.Fatalf("LookupPK(11) = %d,%v, want fresh slot 2", id, ok)
	}
	if book.Tuples[id][2].Str != "Reborn" {
		t.Fatalf("pk 11 content = %q", book.Tuples[id][2].Str)
	}
}
