package sizelos_test

// BenchmarkRoutedQuery measures the full scale-out query path: an
// in-process three-node fleet behind the consistent-hash router, with
// every request travelling client -> router -> owner node -> engine and
// back through the reverse proxy. The gate watches it next to
// BenchmarkEndToEndSearch so the routing tier's overhead (ring lookup,
// drain gate, proxy hop, node-header stamping) stays a bounded tax on the
// query itself rather than silently growing into one more engine's worth
// of latency.

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"sizelos"
	"sizelos/internal/datagen"
	"sizelos/internal/nodehost"
	"sizelos/internal/router"
	"sizelos/internal/tenancy"
)

// benchFleet boots an in-memory three-node fleet behind a router and
// registers one tenant per node-ish (three tenants hash across members).
func benchFleet(b *testing.B) string {
	b.Helper()
	open := func(dataset string, seed int64) (*sizelos.Engine, error) {
		if dataset != "dblp" {
			return nil, fmt.Errorf("bench fleet serves dblp only, got %q", dataset)
		}
		cfg := datagen.DefaultDBLPConfig()
		cfg.Seed = seed
		cfg.Authors = 40
		cfg.Papers = 160
		cfg.Conferences = 4
		cfg.YearSpan = 3
		return sizelos.OpenDBLP(cfg)
	}
	var members []router.Member
	for _, name := range []string{"n1", "n2", "n3"} {
		node, err := nodehost.Boot(tenancy.ServerConfig{
			Seed: 840, CacheBudget: 64, ResidualWorkers: 1,
		}, nil, nodehost.Config{Open: open})
		if err != nil {
			b.Fatalf("boot %s: %v", name, err)
		}
		b.Cleanup(node.Close)
		srv := httptest.NewServer(node.Handler())
		b.Cleanup(srv.Close)
		members = append(members, router.Member{Name: name, URL: srv.URL})
	}
	rt, err := router.New(router.Config{Members: members, HealthInterval: -1})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(rt.Close)
	front := httptest.NewServer(rt)
	b.Cleanup(front.Close)

	for _, tenant := range []string{"tenant-a", "tenant-b", "tenant-c"} {
		resp, err := http.Post(front.URL+"/v1/tenants", "application/json",
			strings.NewReader(fmt.Sprintf(`{"name":%q,"dataset":"dblp"}`, tenant)))
		if err != nil {
			b.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusCreated {
			b.Fatalf("register %s: %d", tenant, resp.StatusCode)
		}
	}
	return front.URL
}

func BenchmarkRoutedQuery(b *testing.B) {
	front := benchFleet(b)
	client := &http.Client{}
	tenants := []string{"tenant-a", "tenant-b", "tenant-c"}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tenant := tenants[i%len(tenants)]
		resp, err := client.Get(front + "/v1/" + tenant + "/search?rel=Author&q=Faloutsos&l=10")
		if err != nil {
			b.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			b.Fatalf("routed search: %d", resp.StatusCode)
		}
		if resp.Header.Get(router.NodeHeader) == "" {
			b.Fatal("routed response missing node attribution header")
		}
	}
}
