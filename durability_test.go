package sizelos

// Export/restore round-trip tests for the durability seam: the state an
// engine exports must rebuild, via NewEngineFromState, an engine that is
// bit-identical in durable state and equivalent in served results. The
// crash-protocol proof (WAL + snapshots + fault injection) lives in
// internal/durable; these tests pin the seam itself.

import (
	"testing"

	"sizelos/internal/datagen"
	"sizelos/internal/mutgen"
	"sizelos/internal/relational"
)

func testDBLPEngine(t *testing.T) *Engine {
	t.Helper()
	cfg := datagen.DefaultDBLPConfig()
	cfg.Authors = 40
	cfg.Papers = 130
	cfg.Conferences = 4
	cfg.YearSpan = 3
	eng, err := OpenDBLP(cfg)
	if err != nil {
		t.Fatalf("OpenDBLP: %v", err)
	}
	return eng
}

// countingLog is a MutationLog stub that records appends.
type countingLog struct {
	mutations int
	compacts  int
}

func (c *countingLog) AppendMutation(MutationBatch) error { c.mutations++; return nil }
func (c *countingLog) AppendCompact() error               { c.compacts++; return nil }
func (c *countingLog) Seq() uint64                        { return uint64(c.mutations + c.compacts) }

func TestExportRestoreRoundTrip(t *testing.T) {
	eng := testDBLPEngine(t)
	// Mutate a little first so the exported state is not the pristine build:
	// tombstones, grown score vectors and bumped epochs all round-trip.
	gen := mutgen.New(eng.DB(), 42)
	for round := 0; round < 8; round++ {
		b := toMutationBatch(gen.NextBatch())
		b.Rerank = round%4 == 3
		if _, err := eng.Mutate(b); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
	}

	st, seq, err := eng.ExportState()
	if err != nil {
		t.Fatalf("export: %v", err)
	}
	if seq != 0 {
		t.Fatalf("seq %d without a log installed", seq)
	}
	restored, err := RestoreDBLP(st)
	if err != nil {
		t.Fatalf("restore: %v", err)
	}

	// Durable state is bit-identical: re-exporting yields the same bytes
	// and vectors.
	st2, _, err := restored.ExportState()
	if err != nil {
		t.Fatalf("re-export: %v", err)
	}
	if string(st.DB) != string(st2.DB) {
		t.Fatalf("relational state bytes diverged: %d vs %d", len(st.DB), len(st2.DB))
	}
	for setting, sc := range st.RawScores {
		for rel, v := range sc {
			w := st2.RawScores[setting][rel]
			if len(v) != len(w) {
				t.Fatalf("%s/%s: %d vs %d scores", setting, rel, len(v), len(w))
			}
			for i := range v {
				if v[i] != w[i] {
					t.Fatalf("%s/%s tuple %d: %v vs %v", setting, rel, i, v[i], w[i])
				}
			}
		}
	}
	for rel, e := range st.Epochs {
		if st2.Epochs[rel] != e {
			t.Fatalf("epoch[%s]: %d vs %d", rel, e, st2.Epochs[rel])
		}
	}

	// Served (normalized) scores agree too, and the engine answers queries.
	for _, name := range eng.SettingNames() {
		a, err := eng.Scores(name)
		if err != nil {
			t.Fatal(err)
		}
		b, err := restored.Scores(name)
		if err != nil {
			t.Fatal(err)
		}
		for _, rel := range eng.DB().Relations {
			for i := range a[rel.Name] {
				if a[rel.Name][i] != b[rel.Name][i] {
					t.Fatalf("%s/%s tuple %d: served score %v vs %v", name, rel.Name, i, a[rel.Name][i], b[rel.Name][i])
				}
			}
		}
	}
	if _, err := restored.Search("Author", "synthetic", 3, SearchOptions{}); err != nil {
		t.Fatalf("restored engine search: %v", err)
	}

	// Mutating the restored engine works and stays equivalent to mutating
	// the original: the two states are identical, so one generated batch is
	// valid for both, and applying it must keep them identical.
	for round := 0; round < 4; round++ {
		b := toMutationBatch(gen.NextBatch())
		if _, err := restored.Mutate(b); err != nil {
			t.Fatalf("restored mutate %d: %v", round, err)
		}
		if _, err := eng.Mutate(b); err != nil {
			t.Fatalf("original mutate %d: %v", round, err)
		}
	}
	sa, _, err := eng.ExportState()
	if err != nil {
		t.Fatal(err)
	}
	sb, _, err := restored.ExportState()
	if err != nil {
		t.Fatal(err)
	}
	if string(sa.DB) != string(sb.DB) {
		t.Fatal("post-restore mutations diverged from the original engine")
	}
}

func TestRestoreRejectsMisalignedScores(t *testing.T) {
	eng := testDBLPEngine(t)
	st, _, err := eng.ExportState()
	if err != nil {
		t.Fatal(err)
	}
	name := eng.SettingNames()[0]

	broken := &EngineState{DB: st.DB, Epochs: st.Epochs, ColdIters: st.ColdIters}
	broken.RawScores = map[string]relational.DBScores{}
	for s, sc := range st.RawScores {
		broken.RawScores[s] = sc
	}
	cut := relational.DBScores{}
	for rel, v := range st.RawScores[name] {
		cut[rel] = v
	}
	cut["Author"] = cut["Author"][:len(cut["Author"])-1]
	broken.RawScores[name] = cut
	if _, err := RestoreDBLP(broken); err == nil {
		t.Fatal("restore accepted a score vector shorter than the relation")
	}

	delete(broken.RawScores, name)
	if _, err := RestoreDBLP(broken); err == nil {
		t.Fatal("restore accepted a missing setting")
	}
}

func TestMutationLogReceivesCommitOrder(t *testing.T) {
	eng := testDBLPEngine(t)
	log := &countingLog{}
	eng.SetMutationLog(log)
	gen := mutgen.New(eng.DB(), 7)
	for i := 0; i < 5; i++ {
		if _, err := eng.Mutate(toMutationBatch(gen.NextBatch())); err != nil {
			t.Fatal(err)
		}
	}
	if log.mutations != 5 {
		t.Fatalf("log saw %d mutations, want 5", log.mutations)
	}
	if _, err := eng.CompactNow(); err != nil {
		t.Fatal(err)
	}
	if log.compacts != 1 {
		t.Fatalf("log saw %d compactions, want 1", log.compacts)
	}
	st, seq, err := eng.ExportState()
	if err != nil {
		t.Fatal(err)
	}
	if seq != 6 {
		t.Fatalf("export seq %d, want 6 (5 mutations + 1 compact)", seq)
	}
	if st == nil || len(st.DB) == 0 {
		t.Fatal("empty export")
	}
	// Detaching the log restores the log-free behavior.
	eng.SetMutationLog(nil)
	if _, err := eng.Mutate(toMutationBatch(gen.NextBatch())); err != nil {
		t.Fatal(err)
	}
}
