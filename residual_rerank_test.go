package sizelos

// Engine-level tests of residual-push re-ranking: mode selection, the
// large-residual fallback boundary, the update-savings contract the
// ROADMAP stakes the feature on, and the compaction interaction that
// forces a full re-grounding. The rank-level mechanics are covered in
// internal/rank/residual_test.go; the randomized mutation-equivalence
// harness (mutation_equiv_test.go) proves served-score correctness against
// cold recomputes across random batches with residual mode enabled.

import (
	"testing"

	"sizelos/internal/datagen"
	"sizelos/internal/rank"
	"sizelos/internal/relational"
)

// residualTestEngine builds a DBLP engine over the practical serving
// settings (the two d=0.85 configurations); the high-damping d3 stress
// setting — repaired by the accelerated dense path rather than pushes —
// is covered separately by TestResidualHighDampingCompletesAccelerated.
func residualTestEngine(t *testing.T, authors, papers int) *Engine {
	t.Helper()
	cfg := datagen.DefaultDBLPConfig()
	cfg.Authors = authors
	cfg.Papers = papers
	db, err := datagen.GenerateDBLP(cfg)
	if err != nil {
		t.Fatalf("GenerateDBLP: %v", err)
	}
	settings := []Setting{
		{Name: "GA1-d1", GA: datagen.DBLPGA1(), Damping: 0.85},
		{Name: "GA2-d1", GA: datagen.DBLPGA2(), Damping: 0.85},
	}
	eng, err := NewEngine(db, settings)
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	if err := eng.RegisterGDS(datagen.AuthorGDS().Threshold(Theta)); err != nil {
		t.Fatalf("RegisterGDS: %v", err)
	}
	return eng
}

// citesStreamBatch is the stationary single-tuple stream op: insert one
// citation, delete the previous op's.
func citesStreamBatch(eng *Engine, pk, prevPK int64, i int) MutationBatch {
	paper := eng.DB().Relation("Paper")
	a := relational.TupleID(i % paper.Len())
	c := relational.TupleID((i*7 + 13) % paper.Len())
	b := MutationBatch{
		Rerank: true,
		Inserts: []TupleInsert{{
			Rel: "Cites",
			Tuple: relational.Tuple{
				relational.IntVal(pk),
				relational.IntVal(paper.PK(a)),
				relational.IntVal(paper.PK(c)),
			},
		}},
	}
	if prevPK != 0 {
		b.Deletes = []TupleDelete{{Rel: "Cites", PK: prevPK}}
	}
	return b
}

// TestResidualRerankTakesResidualPath pins the mode selection: a small
// re-ranked batch repairs scores with residual pushes, not a full sweep.
func TestResidualRerankTakesResidualPath(t *testing.T) {
	eng := residualTestEngine(t, 120, 500)
	res, err := eng.Mutate(citesStreamBatch(eng, 60_000_001, 0, 0))
	if err != nil {
		t.Fatalf("Mutate: %v", err)
	}
	if !res.Reranked {
		t.Fatal("Rerank not honored")
	}
	for name, st := range res.RerankStats {
		if !st.Residual {
			t.Fatalf("%s: expected the residual path, got %+v", name, st)
		}
		if st.FallbackTaken {
			t.Fatalf("%s: single-tuple batch fell back: %+v", name, st)
		}
		if st.Pushes == 0 || st.Iterations != 0 {
			t.Fatalf("%s: expected pushes and no full iterations, got %+v", name, st)
		}
		if !st.WarmStart {
			t.Fatalf("%s: residual repair must report WarmStart", name)
		}
	}
}

// TestResidualUpdateSavings drives the same single-tuple re-ranked stream
// through two engines — residual mode on and off — and asserts the
// ROADMAP bar: at least 5x fewer node-score updates, with the two engines
// serving matching scores the whole way.
func TestResidualUpdateSavings(t *testing.T) {
	resEng := residualTestEngine(t, 120, 500)
	warmEng := residualTestEngine(t, 120, 500)
	warmEng.SetResidualRerank(false)

	const rounds = 8
	residualUpdates, warmUpdates := 0, 0
	prev := int64(0)
	for i := 0; i < rounds; i++ {
		pk := int64(60_000_100 + i)
		batch := citesStreamBatch(resEng, pk, prev, i)
		resR, err := resEng.Mutate(batch)
		if err != nil {
			t.Fatalf("round %d: residual Mutate: %v", i, err)
		}
		warmR, err := warmEng.Mutate(batch)
		if err != nil {
			t.Fatalf("round %d: warm Mutate: %v", i, err)
		}
		prev = pk
		for name, st := range resR.RerankStats {
			if !st.Residual || st.FallbackTaken {
				t.Fatalf("round %d: %s not residual: %+v", i, name, st)
			}
			residualUpdates += st.Updates
		}
		for name, st := range warmR.RerankStats {
			if st.Residual {
				t.Fatalf("round %d: %s took residual with the mode off: %+v", i, name, st)
			}
			warmUpdates += st.Updates
		}
		for _, name := range resEng.SettingNames() {
			a, _ := resEng.Scores(name)
			b, _ := warmEng.Scores(name)
			for _, rel := range resEng.DB().Relations {
				for j := range a[rel.Name] {
					d := a[rel.Name][j] - b[rel.Name][j]
					if d < 0 {
						d = -d
					}
					// Both engines converge to max residual < epsilon; the
					// harness-style tolerance on the normalized 0..100 scale
					// (epsilon amplified by 1/(1-d) and the presentation
					// rescale) is ~1e-2 for these fixtures, and any seeding or
					// splicing bug perturbs scores at whole-percent scale.
					if d > 2e-2 {
						t.Fatalf("round %d: %s/%s tuple %d: residual %v vs warm %v",
							i, name, rel.Name, j, a[rel.Name][j], b[rel.Name][j])
					}
				}
			}
		}
	}
	if residualUpdates*5 > warmUpdates {
		t.Fatalf("residual updates %d not >=5x fewer than warm %d (%.1fx)",
			residualUpdates, warmUpdates, float64(warmUpdates)/float64(residualUpdates))
	}
	t.Logf("node-score updates over %d re-ranked rounds: residual %d vs warm-full %d (%.1fx fewer)",
		rounds, residualUpdates, warmUpdates, float64(warmUpdates)/float64(residualUpdates))
}

// TestResidualFallbackBoundary forces a large-residual batch — thousands
// of new citations at once against a deliberately tight push budget — and
// asserts the safety fallback fires and still lands on the cold scores
// within the warm path's tolerance contract (the same bound the
// mutation-equivalence harness enforces). The budget override makes the
// boundary deterministic: with the default budget this batch shape
// genuinely converges via pushes (see TestResidualLargeBatchStillConverges).
func TestResidualFallbackBoundary(t *testing.T) {
	eng := residualTestEngine(t, 80, 260)
	eng.SetResidualBudget(50)
	paper := eng.DB().Relation("Paper")
	batch := MutationBatch{Rerank: true}
	for i := 0; i < 2500; i++ {
		a := relational.TupleID(i % paper.Len())
		c := relational.TupleID((i*13 + 7) % paper.Len())
		batch.Inserts = append(batch.Inserts, TupleInsert{
			Rel: "Cites",
			Tuple: relational.Tuple{
				relational.IntVal(int64(61_000_000 + i)),
				relational.IntVal(paper.PK(a)),
				relational.IntVal(paper.PK(c)),
			},
		})
	}
	res, err := eng.Mutate(batch)
	if err != nil {
		t.Fatalf("Mutate: %v", err)
	}
	st := res.RerankStats[DefaultSetting]
	if !st.Residual || !st.FallbackTaken {
		t.Fatalf("large-residual batch did not fall back: %+v", st)
	}
	if st.Iterations == 0 {
		t.Fatalf("fallback must run the full iteration: %+v", st)
	}

	// The served scores still satisfy the warm≡cold tolerance contract.
	opts := rank.DefaultOptions()
	opts.NormalizeMax = 0
	cold, coldStats, err := rank.Compute(eng.Graph(), datagen.DBLPGA1(), opts)
	if err != nil || !coldStats.Converged {
		t.Fatalf("cold: err=%v stats=%+v", err, coldStats)
	}
	maxRaw := 0.0
	for _, sc := range cold {
		if m := sc.MaxScore(); m > maxRaw {
			maxRaw = m
		}
	}
	rank.Normalize(cold, rank.DefaultOptions().NormalizeMax)
	tol := warmColdTolerance(0.85, opts.Epsilon, maxRaw)
	got, err := eng.Scores(DefaultSetting)
	if err != nil {
		t.Fatalf("Scores: %v", err)
	}
	for _, rel := range eng.DB().Relations {
		c, w := cold[rel.Name], got[rel.Name]
		for i := range c {
			d := c[i] - w[i]
			if d < 0 {
				d = -d
			}
			if d > tol {
				t.Fatalf("%s tuple %d: served %.9f vs cold %.9f (tol %g)", rel.Name, i, w[i], c[i], tol)
			}
		}
	}
}

// TestResidualLargeBatchStillConverges: under the default budget, the same
// thousands-of-citations batch is repaired by pushes alone — the boundary
// sits well past any realistic streaming batch, and the push count still
// undercuts what the warm full iteration would have paid.
func TestResidualLargeBatchStillConverges(t *testing.T) {
	eng := residualTestEngine(t, 80, 260)
	paper := eng.DB().Relation("Paper")
	batch := MutationBatch{Rerank: true}
	for i := 0; i < 2500; i++ {
		a := relational.TupleID(i % paper.Len())
		c := relational.TupleID((i*13 + 7) % paper.Len())
		batch.Inserts = append(batch.Inserts, TupleInsert{
			Rel: "Cites",
			Tuple: relational.Tuple{
				relational.IntVal(int64(63_000_000 + i)),
				relational.IntVal(paper.PK(a)),
				relational.IntVal(paper.PK(c)),
			},
		})
	}
	res, err := eng.Mutate(batch)
	if err != nil {
		t.Fatalf("Mutate: %v", err)
	}
	nodes := eng.Graph().NumNodes()
	for name, st := range res.RerankStats {
		if !st.Residual || st.FallbackTaken {
			t.Fatalf("%s: expected a completed residual repair, got %+v", name, st)
		}
		if st.Updates >= e5xWarmFloor(nodes) {
			t.Fatalf("%s: %d updates on a %d-node graph — no win over a full iteration", name, st.Updates, nodes)
		}
	}
}

// e5xWarmFloor is a conservative lower bound on what a warm full re-rank
// costs (node-score updates) after a batch this disruptive: at least five
// arena sweeps.
func e5xWarmFloor(nodes int) int { return 5 * nodes }

// TestResidualHighDampingCompletesAccelerated pins the PR-9 wart fix for
// the d3=0.99 stress setting, whose slow global modes decay only
// geometrically per push round. Single-tuple re-ranks must complete in the
// localized path — FallbackTaken false. A disruptive batch whose push
// genuinely trips the 4n budget must be rescued by the accelerated dense
// finisher (deflation + Chebyshev) instead of abandoning to the full
// iteration — while SetResidualAccel(false) preserves the legacy
// budget-trip behavior — and the served scores stay within the cold-start
// tolerance contract throughout.
func TestResidualHighDampingCompletesAccelerated(t *testing.T) {
	mk := func() *Engine {
		cfg := datagen.DefaultDBLPConfig()
		cfg.Authors = 120
		cfg.Papers = 500
		db, err := datagen.GenerateDBLP(cfg)
		if err != nil {
			t.Fatalf("GenerateDBLP: %v", err)
		}
		eng, err := NewEngine(db, []Setting{{Name: "GA1-d3", GA: datagen.DBLPGA1(), Damping: 0.99}})
		if err != nil {
			t.Fatalf("NewEngine: %v", err)
		}
		return eng
	}
	accel := mk()
	legacy := mk()
	legacy.SetResidualAccel(false)

	// The wart itself: a d=0.99 single-tuple re-rank stays localized.
	res, err := accel.Mutate(citesStreamBatch(accel, 65_000_001, 0, 0))
	if err != nil {
		t.Fatalf("single-tuple Mutate: %v", err)
	}
	st := res.RerankStats["GA1-d3"]
	if !st.Residual || st.FallbackTaken {
		t.Fatalf("d=0.99 single-tuple re-rank fell back: %+v", st)
	}
	if st.Iterations != 0 || st.Pushes == 0 {
		t.Fatalf("d=0.99 single-tuple re-rank did not repair by pushes: %+v", st)
	}

	// A disruptive batch: hundreds of citations at once. The push trips
	// the budget; the accelerated rescue must finish localized.
	big := func(eng *Engine, base int64) MutationBatch {
		paper := eng.DB().Relation("Paper")
		b := MutationBatch{Rerank: true}
		for i := 0; i < 800; i++ {
			a := relational.TupleID(i % paper.Len())
			c := relational.TupleID((i*13 + 7) % paper.Len())
			b.Inserts = append(b.Inserts, TupleInsert{
				Rel: "Cites",
				Tuple: relational.Tuple{
					relational.IntVal(base + int64(i)),
					relational.IntVal(paper.PK(a)),
					relational.IntVal(paper.PK(c)),
				},
			})
		}
		return b
	}
	res, err = accel.Mutate(big(accel, 66_000_000))
	if err != nil {
		t.Fatalf("accel Mutate: %v", err)
	}
	st = res.RerankStats["GA1-d3"]
	if !st.Residual || st.FallbackTaken {
		t.Fatalf("d=0.99 disruptive re-rank fell back: %+v", st)
	}
	if !st.Accelerated || st.Rounds == 0 {
		t.Fatalf("budget-tripped d=0.99 repair was not rescued by acceleration: %+v", st)
	}
	if st.Iterations != 0 {
		t.Fatalf("completed accelerated rescue ran full iterations: %+v", st)
	}

	if _, err := legacy.Mutate(citesStreamBatch(legacy, 65_000_001, 0, 0)); err != nil {
		t.Fatalf("legacy single-tuple Mutate: %v", err)
	}
	resL, err := legacy.Mutate(big(legacy, 66_000_000))
	if err != nil {
		t.Fatalf("legacy Mutate: %v", err)
	}
	stL := resL.RerankStats["GA1-d3"]
	if !stL.Residual || !stL.FallbackTaken || stL.Accelerated {
		t.Fatalf("with acceleration off, the disruptive d=0.99 batch must budget-trip into the fallback: %+v", stL)
	}

	// Both modes still satisfy the cold-start tolerance contract.
	opts := rank.DefaultOptions()
	opts.Damping = 0.99
	opts.NormalizeMax = 0
	cold, coldStats, err := rank.Compute(accel.Graph(), datagen.DBLPGA1(), opts)
	if err != nil || !coldStats.Converged {
		t.Fatalf("cold: err=%v stats=%+v", err, coldStats)
	}
	maxRaw := 0.0
	for _, sc := range cold {
		if m := sc.MaxScore(); m > maxRaw {
			maxRaw = m
		}
	}
	rank.Normalize(cold, rank.DefaultOptions().NormalizeMax)
	tol := warmColdTolerance(0.99, opts.Epsilon, maxRaw)
	for _, eng := range []*Engine{accel, legacy} {
		got, err := eng.Scores("GA1-d3")
		if err != nil {
			t.Fatalf("Scores: %v", err)
		}
		for _, rel := range eng.DB().Relations {
			c, w := cold[rel.Name], got[rel.Name]
			for i := range c {
				d := c[i] - w[i]
				if d < 0 {
					d = -d
				}
				if d > tol {
					t.Fatalf("%s tuple %d: served %.9f vs cold %.9f (tol %g)", rel.Name, i, w[i], c[i], tol)
				}
			}
		}
	}
}

// TestResidualAfterCompactionFullRerank: a compaction remaps TupleIDs out
// from under the accumulated residual deltas, so the next re-rank must
// re-ground with the warm full iteration — and the one after that goes
// back to residual repair.
func TestResidualAfterCompactionFullRerank(t *testing.T) {
	eng := residualTestEngine(t, 80, 260)
	eng.SetCompactionPolicy(1, 0.0001)

	cites := eng.DB().Relation("Cites")
	var pk int64
	for i := 0; i < cites.Len(); i++ {
		if !cites.Deleted(relational.TupleID(i)) {
			pk = cites.PK(relational.TupleID(i))
			break
		}
	}
	res, err := eng.Mutate(MutationBatch{
		Rerank:  true,
		Deletes: []TupleDelete{{Rel: "Cites", PK: pk}},
	})
	if err != nil {
		t.Fatalf("Mutate: %v", err)
	}
	if len(res.Compacted) == 0 {
		t.Fatal("aggressive policy did not compact")
	}
	if st := res.RerankStats[DefaultSetting]; st.Residual {
		t.Fatalf("post-compaction re-rank must run full, got %+v", st)
	}

	res, err = eng.Mutate(citesStreamBatch(eng, 62_000_001, 0, 1))
	if err != nil {
		t.Fatalf("second Mutate: %v", err)
	}
	if st := res.RerankStats[DefaultSetting]; !st.Residual {
		t.Fatalf("re-rank after re-grounding should be residual again, got %+v", st)
	}
}

// TestRerankOnlyBatchReusesConvergedScores: a {Rerank: true} batch with no
// operations right after a re-rank has nothing to repair — the engine
// serves the already-converged scores without any recompute, and since the
// scores are provably unchanged, no epoch moves: a periodic rerank
// heartbeat must not wipe warm summary caches.
func TestRerankOnlyBatchReusesConvergedScores(t *testing.T) {
	eng := residualTestEngine(t, 80, 260)
	before := eng.EpochFor("Author")
	res, err := eng.Mutate(MutationBatch{Rerank: true})
	if err != nil {
		t.Fatalf("Mutate: %v", err)
	}
	if !res.Reranked {
		t.Fatal("Rerank not honored")
	}
	for name, st := range res.RerankStats {
		if st.Iterations != 0 || st.Pushes != 0 {
			t.Fatalf("%s: rerank-only batch paid recompute work: %+v", name, st)
		}
	}
	if len(res.Epochs) != 0 || eng.EpochFor("Author") != before {
		t.Fatalf("no-op re-rank rotated epochs: %v (Author %d -> %d)", res.Epochs, before, eng.EpochFor("Author"))
	}
	if _, err := eng.Search("Author", "Faloutsos", 5, SearchOptions{}); err != nil {
		t.Fatalf("post-rerank search: %v", err)
	}

	// A re-rank that actually recomputes still rotates every epoch.
	if _, err := eng.Mutate(citesStreamBatch(eng, 64_000_001, 0, 0)); err != nil {
		t.Fatalf("second Mutate: %v", err)
	}
	if eng.EpochFor("Author") == before {
		t.Fatal("real re-rank did not advance epochs")
	}
}
