package sizelos

// Durable live-service integration tests: boot the real cmd/ossrv binary
// with a -data-dir, then prove the two lifecycle guarantees no unit test
// can — a SIGTERM drains in-flight requests and leaves a final snapshot
// behind (clean restart replays zero WAL records), and a kill -9 in the
// middle of a mutation stream loses nothing that was acknowledged.
// Gated behind SIZELOS_INTEGRATION=1 like TestLiveServiceHTTP; CI runs
// them in the crash-recovery job.

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"
)

// ossrvProc is one running ossrv child process plus its captured log.
type ossrvProc struct {
	t    *testing.T
	cmd  *exec.Cmd
	base string

	mu   sync.Mutex
	logs []string

	scanDone chan struct{}
	waitOnce sync.Once
	waitErr  error
}

func buildOssrv(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "ossrv")
	build := exec.Command("go", "build", "-o", bin, "./cmd/ossrv")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("build ossrv: %v\n%s", err, out)
	}
	return bin
}

// startOssrv boots the binary and waits for its listen line.
func startOssrv(t *testing.T, bin string, args ...string) *ossrvProc {
	t.Helper()
	p := &ossrvProc{t: t, cmd: exec.Command(bin, args...), scanDone: make(chan struct{})}
	stderr, err := p.cmd.StderrPipe()
	if err != nil {
		t.Fatalf("stderr pipe: %v", err)
	}
	if err := p.cmd.Start(); err != nil {
		t.Fatalf("start ossrv: %v", err)
	}
	t.Cleanup(func() {
		_ = p.cmd.Process.Kill()
		p.wait()
	})
	addrCh := make(chan string, 1)
	go func() {
		defer close(p.scanDone)
		sc := bufio.NewScanner(stderr)
		for sc.Scan() {
			line := sc.Text()
			t.Logf("ossrv: %s", line)
			p.mu.Lock()
			p.logs = append(p.logs, line)
			p.mu.Unlock()
			if m := listenLine.FindStringSubmatch(line); m != nil {
				select {
				case addrCh <- m[1]:
				default:
				}
			}
		}
	}()
	select {
	case addr := <-addrCh:
		p.base = "http://" + addr
	case <-time.After(2 * time.Minute):
		t.Fatal("ossrv never reported its listen address")
	}
	return p
}

func (p *ossrvProc) wait() error {
	p.waitOnce.Do(func() {
		// Drain stderr to EOF before reaping: Wait closes the pipe, and
		// reaping first can drop the process's final log lines (the
		// "shutdown complete" assertion races otherwise).
		<-p.scanDone
		p.waitErr = p.cmd.Wait()
	})
	return p.waitErr
}

// logMatch reports whether any captured log line matches re.
func (p *ossrvProc) logMatch(re *regexp.Regexp) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, line := range p.logs {
		if re.MatchString(line) {
			return true
		}
	}
	return false
}

func (p *ossrvProc) getJSON(path string, want int, v any) {
	p.t.Helper()
	resp, err := http.Get(p.base + path)
	if err != nil {
		p.t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != want {
		p.t.Fatalf("GET %s = %d, want %d\n%s", path, resp.StatusCode, want, body)
	}
	if v != nil {
		if err := json.Unmarshal(body, v); err != nil {
			p.t.Fatalf("GET %s: decode: %v\n%s", path, err, body)
		}
	}
}

func (p *ossrvProc) postJSON(path, payload string, want int) {
	p.t.Helper()
	resp, err := http.Post(p.base+path, "application/json", strings.NewReader(payload))
	if err != nil {
		p.t.Fatalf("POST %s: %v", path, err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != want {
		p.t.Fatalf("POST %s = %d, want %d\n%s", path, resp.StatusCode, want, body)
	}
}

// searchCount returns the result count for one keyword in one tenant.
func (p *ossrvProc) searchCount(tenant, q string) int {
	p.t.Helper()
	var sr struct {
		Count int `json:"count"`
	}
	p.getJSON("/v1/"+tenant+"/search?rel=Author&q="+q+"&l=8", http.StatusOK, &sr)
	return sr.Count
}

var (
	shutdownLine = regexp.MustCompile(`shutdown complete`)
	replayedLine = regexp.MustCompile(`snapshot seq [0-9]+, ([0-9]+) records replayed`)
)

// exitCleanOnSIGTERM signals the process and requires a zero exit within
// the deadline.
func exitCleanOnSIGTERM(t *testing.T, p *ossrvProc) {
	t.Helper()
	if err := p.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatalf("SIGTERM: %v", err)
	}
	done := make(chan error, 1)
	go func() { done <- p.wait() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("ossrv exited non-zero after SIGTERM: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("ossrv did not exit within 30s of SIGTERM")
	}
	if !p.logMatch(shutdownLine) {
		t.Fatal("ossrv exited without logging a completed shutdown")
	}
}

// TestLiveServiceGracefulShutdown is the satellite-1 regression test: a
// SIGTERM must drain and exit 0 both with and without durability, and with
// durability the shutdown snapshot must make the next boot replay nothing.
func TestLiveServiceGracefulShutdown(t *testing.T) {
	if os.Getenv("SIZELOS_INTEGRATION") == "" {
		t.Skip("set SIZELOS_INTEGRATION=1 to run the live-service integration tests")
	}
	bin := buildOssrv(t)

	// Durability off: the drain path alone must exit cleanly.
	plain := startOssrv(t, bin, "-addr", "127.0.0.1:0", "-tenant", "none")
	plain.getJSON("/v1/tenants", http.StatusOK, nil)
	exitCleanOnSIGTERM(t, plain)

	// Durability on: register, mutate, SIGTERM. The final snapshot must
	// cover the whole WAL, so the restart recovers with zero replay and the
	// mutation is still served.
	dataDir := filepath.Join(t.TempDir(), "data")
	srv := startOssrv(t, bin, "-addr", "127.0.0.1:0", "-tenant", "none", "-data-dir", dataDir)
	srv.postJSON("/v1/tenants", `{"name":"dur","dataset":"dblp","seed":7,"cache":64}`, http.StatusCreated)
	srv.postJSON("/v1/dur/tuples",
		`{"inserts":[{"rel":"Author","values":[990001,"Greta Shutdownproof"]}]}`, http.StatusOK)
	if n := srv.searchCount("dur", "Shutdownproof"); n != 1 {
		t.Fatalf("pre-shutdown count = %d, want 1", n)
	}
	exitCleanOnSIGTERM(t, srv)

	srv2 := startOssrv(t, bin, "-addr", "127.0.0.1:0", "-tenant", "none", "-data-dir", dataDir)
	if n := srv2.searchCount("dur", "Shutdownproof"); n != 1 {
		t.Fatalf("post-restart count = %d, want 1", n)
	}
	// The recovery line was written to stderr before the search response,
	// but the scanner goroutine consumes the pipe asynchronously — poll
	// rather than reading the captured log once.
	replayed := -1
	for deadline := time.Now().Add(10 * time.Second); replayed < 0 && time.Now().Before(deadline); {
		srv2.mu.Lock()
		for _, line := range srv2.logs {
			if m := replayedLine.FindStringSubmatch(line); m != nil {
				fmt.Sscanf(m[1], "%d", &replayed)
			}
		}
		srv2.mu.Unlock()
		if replayed < 0 {
			time.Sleep(20 * time.Millisecond)
		}
	}
	if replayed != 0 {
		t.Fatalf("restart replayed %d WAL records, want 0 (final snapshot missing or stale)", replayed)
	}
	exitCleanOnSIGTERM(t, srv2)
}

// TestLiveServiceCrashRecovery is the satellite-5 kill -9 leg: SIGKILL a
// loaded server in the middle of a mutation stream, restart it on the same
// data dir, and require every acknowledged insert to be served. A short
// snapshot interval keeps snapshots and WAL rotation happening under load
// so the recovery exercises the full snapshot+tail path, not just replay.
func TestLiveServiceCrashRecovery(t *testing.T) {
	if os.Getenv("SIZELOS_INTEGRATION") == "" {
		t.Skip("set SIZELOS_INTEGRATION=1 to run the live-service integration tests")
	}
	bin := buildOssrv(t)
	dataDir := filepath.Join(t.TempDir(), "data")
	boot := func() *ossrvProc {
		return startOssrv(t, bin, "-addr", "127.0.0.1:0", "-tenant", "none",
			"-data-dir", dataDir, "-snapshot-interval", "300ms")
	}

	srv := boot()
	srv.postJSON("/v1/tenants", `{"name":"crashy","dataset":"dblp","seed":7,"cache":64}`, http.StatusCreated)

	// Stream sequential inserts from a goroutine; each 200 OK is an
	// acknowledgement the durability tier must honor across the kill. The
	// cap is far beyond what any machine acks before the kill lands, so the
	// SIGKILL always interrupts an active stream.
	const maxInserts = 200000
	var (
		ackMu sync.Mutex
		acked int
	)
	streamDone := make(chan int, 1)
	go func() {
		sent := 0
		for i := 0; i < maxInserts; i++ {
			payload := fmt.Sprintf(
				`{"inserts":[{"rel":"Author","values":[%d,"Crashwitness Number%04d"]}]}`,
				991000+i, i)
			sent++
			resp, err := http.Post(srv.base+"/v1/crashy/tuples", "application/json",
				strings.NewReader(payload))
			if err != nil {
				break // the kill landed mid-request
			}
			_, _ = io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				break
			}
			ackMu.Lock()
			acked++
			ackMu.Unlock()
		}
		streamDone <- sent
	}()

	// Let the stream cross at least one snapshot tick, then kill -9.
	deadline := time.After(30 * time.Second)
	for {
		ackMu.Lock()
		n := acked
		ackMu.Unlock()
		if n >= 40 {
			break
		}
		select {
		case <-deadline:
			t.Fatalf("stream too slow: only %d inserts acked in 30s", n)
		case <-time.After(10 * time.Millisecond):
		}
	}
	time.Sleep(400 * time.Millisecond) // guarantee a mid-stream snapshot happened
	if err := srv.cmd.Process.Kill(); err != nil {
		t.Fatalf("kill -9: %v", err)
	}
	sent := <-streamDone
	_ = srv.wait()
	ackMu.Lock()
	ackedFinal := acked
	ackMu.Unlock()
	if ackedFinal < 40 || sent < ackedFinal {
		t.Fatalf("stream bookkeeping broken: sent=%d acked=%d", sent, ackedFinal)
	}
	t.Logf("killed ossrv with %d/%d inserts acked", ackedFinal, sent)

	// Restart on the same data dir. The first search lazily recovers the
	// tenant; every acknowledged insert must be there (the one possibly
	// in-flight insert may or may not have committed — both are legal).
	srv2 := boot()
	got := srv2.searchCount("crashy", "Crashwitness")
	if got < ackedFinal || got > sent {
		t.Fatalf("recovered %d Crashwitness authors, want between %d (acked) and %d (sent)", got, ackedFinal, sent)
	}
	// The baseline fixture data recovered too, and the write path is alive.
	if n := srv2.searchCount("crashy", "Faloutsos"); n != 3 {
		t.Fatalf("post-crash Faloutsos count = %d, want 3", n)
	}
	srv2.postJSON("/v1/crashy/tuples",
		`{"inserts":[{"rel":"Author","values":[995000,"Postcrash Survivor"]}]}`, http.StatusOK)
	if n := srv2.searchCount("crashy", "Postcrash"); n != 1 {
		t.Fatalf("post-crash insert not served")
	}

	// And a graceful stop still works after a crash recovery.
	exitCleanOnSIGTERM(t, srv2)
	srv3 := boot()
	if n := srv3.searchCount("crashy", "Postcrash"); n != 1 {
		t.Fatalf("third boot lost the post-crash insert")
	}
	exitCleanOnSIGTERM(t, srv3)
}
