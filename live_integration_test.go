package sizelos

// Live-service integration test: builds the real cmd/ossrv binary, boots
// it on an ephemeral port, and exercises the whole admin lifecycle over
// actual HTTP — dynamic tenant registration, tuple mutation with freshness
// assertions, and deregistration. Gated behind SIZELOS_INTEGRATION=1
// because it builds a binary and two engines; CI runs it as its own leg.

import (
	"bufio"
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
	"time"
)

var listenLine = regexp.MustCompile(`listening on ([^\s]+:[0-9]+)`)

func TestLiveServiceHTTP(t *testing.T) {
	if os.Getenv("SIZELOS_INTEGRATION") == "" {
		t.Skip("set SIZELOS_INTEGRATION=1 to run the live-service integration test")
	}
	bin := filepath.Join(t.TempDir(), "ossrv")
	build := exec.Command("go", "build", "-o", bin, "./cmd/ossrv")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("build ossrv: %v\n%s", err, out)
	}

	srv := exec.Command(bin, "-addr", "127.0.0.1:0", "-tenant", "none", "-cache", "128")
	stderr, err := srv.StderrPipe()
	if err != nil {
		t.Fatalf("stderr pipe: %v", err)
	}
	if err := srv.Start(); err != nil {
		t.Fatalf("start ossrv: %v", err)
	}
	defer func() {
		_ = srv.Process.Kill()
		_ = srv.Wait()
	}()

	// The service logs its chosen address once the listener is up.
	addrCh := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stderr)
		for sc.Scan() {
			line := sc.Text()
			t.Logf("ossrv: %s", line)
			if m := listenLine.FindStringSubmatch(line); m != nil {
				select {
				case addrCh <- m[1]:
				default:
				}
			}
		}
	}()
	var base string
	select {
	case addr := <-addrCh:
		base = "http://" + addr
	case <-time.After(2 * time.Minute):
		t.Fatal("ossrv never reported its listen address")
	}

	getJSON := func(path string, want int, v any) {
		t.Helper()
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		if resp.StatusCode != want {
			t.Fatalf("GET %s = %d, want %d\n%s", path, resp.StatusCode, want, body)
		}
		if v != nil {
			if err := json.Unmarshal(body, v); err != nil {
				t.Fatalf("GET %s: decode: %v\n%s", path, err, body)
			}
		}
	}
	postJSON := func(path string, payload string, want int, v any) {
		t.Helper()
		resp, err := http.Post(base+path, "application/json", strings.NewReader(payload))
		if err != nil {
			t.Fatalf("POST %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		if resp.StatusCode != want {
			t.Fatalf("POST %s = %d, want %d\n%s", path, resp.StatusCode, want, body)
		}
		if v != nil {
			if err := json.Unmarshal(body, v); err != nil {
				t.Fatalf("POST %s: decode: %v\n%s", path, err, body)
			}
		}
	}

	// Empty registry at boot; unknown paths are JSON 404s.
	var tenants struct {
		Tenants []string `json:"tenants"`
	}
	getJSON("/v1/tenants", http.StatusOK, &tenants)
	if len(tenants.Tenants) != 0 {
		t.Fatalf("boot tenants = %v, want none", tenants.Tenants)
	}
	var e struct {
		Error struct {
			Code    string `json:"code"`
			Message string `json:"message"`
		} `json:"error"`
	}
	getJSON("/v1/nobody/bogus", http.StatusNotFound, &e)
	if e.Error.Code != "not_found" || e.Error.Message == "" {
		t.Fatalf("404 envelope = %+v", e.Error)
	}

	// Register a tenant dynamically — no flags, no restart.
	var created struct {
		Tenant   string   `json:"tenant"`
		Settings []string `json:"settings"`
	}
	postJSON("/v1/tenants", `{"name":"live","dataset":"dblp","seed":7,"cache":128}`, http.StatusCreated, &created)
	if created.Tenant != "live" || len(created.Settings) == 0 {
		t.Fatalf("register response: %+v", created)
	}
	getJSON("/v1/tenants", http.StatusOK, &tenants)
	if len(tenants.Tenants) != 1 || tenants.Tenants[0] != "live" {
		t.Fatalf("tenants after register = %v", tenants.Tenants)
	}

	type searchResp struct {
		Count   int `json:"count"`
		Results []struct {
			Headline string `json:"headline"`
			Text     string `json:"text"`
		} `json:"results"`
	}
	search := func(q string) searchResp {
		t.Helper()
		var sr searchResp
		getJSON("/v1/live/search?rel=Author&q="+q+"&l=8", http.StatusOK, &sr)
		return sr
	}

	// The famous fixture authors answer immediately.
	if sr := search("Faloutsos"); sr.Count != 3 {
		t.Fatalf("Faloutsos count = %d, want 3", sr.Count)
	}

	// Mutate: insert a brand-new author and wire a paper to them; the very
	// next search must see it (fresh, not a stale cached miss).
	if sr := search("Tuplesmith"); sr.Count != 0 {
		t.Fatalf("pre-insert Tuplesmith count = %d", sr.Count)
	}
	var paper struct {
		Results []struct {
			Tuple int `json:"tuple"`
		} `json:"results"`
	}
	getJSON("/v1/live/search?rel=Paper&q=the&l=1&topk=1", http.StatusOK, &paper)
	var mut struct {
		Inserted []int             `json:"inserted"`
		Epochs   map[string]uint64 `json:"epochs"`
	}
	postJSON("/v1/live/tuples",
		`{"inserts":[{"rel":"Author","values":[990001,"Livia Tuplesmith"]}]}`,
		http.StatusOK, &mut)
	if len(mut.Inserted) != 1 || mut.Epochs["Author"] == 0 {
		t.Fatalf("mutate response: %+v", mut)
	}
	sr := search("Tuplesmith")
	if sr.Count != 1 || !strings.Contains(sr.Results[0].Headline, "Tuplesmith") {
		t.Fatalf("post-insert Tuplesmith = %+v", sr)
	}
	// Repeat (cache-served) stays fresh and identical.
	if sr2 := search("Tuplesmith"); sr2.Count != 1 || sr2.Results[0].Text != sr.Results[0].Text {
		t.Fatalf("cached repeat diverged: %+v", sr2)
	}

	// Conflicts don't corrupt: duplicate key is a 409, then the tenant
	// still serves.
	postJSON("/v1/live/tuples",
		`{"inserts":[{"rel":"Author","values":[990001,"Duplicate Tuplesmith"]}]}`,
		http.StatusConflict, nil)
	if sr := search("Tuplesmith"); sr.Count != 1 {
		t.Fatalf("after conflict, Tuplesmith = %d", sr.Count)
	}

	// Delete the author; searches go stale-free back to zero.
	postJSON("/v1/live/tuples", `{"deletes":[{"rel":"Author","pk":990001}]}`, http.StatusOK, nil)
	if sr := search("Tuplesmith"); sr.Count != 0 {
		t.Fatalf("post-delete Tuplesmith = %d, want 0", sr.Count)
	}

	// Deregister over HTTP; the tenant is gone from the live service.
	req, _ := http.NewRequest(http.MethodDelete, base+"/v1/live", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("DELETE /v1/live: %v", err)
	}
	var body bytes.Buffer
	_, _ = io.Copy(&body, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("DELETE /v1/live = %d\n%s", resp.StatusCode, body.String())
	}
	getJSON("/v1/live/search?rel=Author&q=Faloutsos", http.StatusNotFound, nil)
	getJSON("/v1/tenants", http.StatusOK, &tenants)
	if len(tenants.Tenants) != 0 {
		t.Fatalf("tenants after deregister = %v", tenants.Tenants)
	}
}
