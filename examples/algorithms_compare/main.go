// Algorithm comparison on one data subject: compute the same size-l OS with
// the optimal DP, Bottom-Up Pruning and Update Top-Path-l — from both the
// complete OS and the prelim-l OS — and report importance, approximation
// ratio and timing side by side (a miniature of the paper's Figures 9 and
// 10).
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"sizelos"
	"sizelos/internal/datagen"
	"sizelos/internal/ostree"
	"sizelos/internal/sizel"
)

func main() {
	cfg := datagen.DefaultDBLPConfig()
	cfg.Authors = 300
	cfg.Papers = 1500
	eng, err := sizelos.OpenDBLP(cfg)
	if err != nil {
		log.Fatalf("open dblp: %v", err)
	}
	const l = 20

	scores, err := eng.Scores(sizelos.DefaultSetting)
	if err != nil {
		log.Fatal(err)
	}
	gds, err := eng.GDS("Author", sizelos.DefaultSetting)
	if err != nil {
		log.Fatal(err)
	}
	root, ok := eng.DB().Relation("Author").LookupPK(1) // Christos
	if !ok {
		log.Fatal("author 1 missing")
	}
	src := ostree.NewGraphSource(eng.Graph(), scores)

	complete, err := ostree.Generate(src, gds, root, ostree.GenOptions{MaxDepth: l - 1})
	if err != nil {
		log.Fatal(err)
	}
	prelim, pstats, err := sizel.PrelimL(src, gds, root, l, sizel.PrelimOptions{MaxDepth: l - 1})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("complete OS: %d tuples;  prelim-%d OS: %d tuples "+
		"(AC1 skips: %d, AC2 TOP-l joins: %d)\n\n",
		complete.Len(), l, prelim.Len(), pstats.AC1Skips, pstats.AC2TopL)

	opt, err := sizel.DP(context.Background(), complete, l)
	if err != nil {
		log.Fatal(err)
	}

	type method struct {
		name string
		run  func(*ostree.Tree) (sizel.Result, error)
	}
	methods := []method{
		{"DP (optimal)", func(t *ostree.Tree) (sizel.Result, error) {
			return sizel.DP(context.Background(), t, l)
		}},
		{"Bottom-Up", func(t *ostree.Tree) (sizel.Result, error) {
			return sizel.BottomUp(t, l)
		}},
		{"Top-Path", func(t *ostree.Tree) (sizel.Result, error) {
			return sizel.TopPath(t, l, sizel.TopPathOptions{})
		}},
	}
	fmt.Printf("%-14s %-12s %10s %8s %12s\n", "method", "input", "Im(S)", "approx", "time")
	for _, m := range methods {
		for _, in := range []struct {
			name string
			tree *ostree.Tree
		}{{"complete", complete}, {"prelim-l", prelim}} {
			start := time.Now()
			res, err := m.run(in.tree)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%-14s %-12s %10.2f %7.2f%% %12v\n",
				m.name, in.name, res.Importance,
				100*res.Importance/opt.Importance, time.Since(start).Round(time.Microsecond))
		}
	}
}
