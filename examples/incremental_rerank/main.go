// Example incremental_rerank drives a live mutation stream through the
// engine with re-ranking on every batch and prints the RerankStats
// telemetry: which re-rank path ran (residual push vs warm full
// iteration), how many Gauss–Southwell pushes it took, and how much work
// it saved against the full iteration a cold deployment would pay.
//
//	go run ./examples/incremental_rerank
//
// The stream is the stationary single-tuple shape the benchmarks use —
// each op inserts one citation between existing papers and retracts the
// previous op's — so every printed line is the steady-state cost of
// keeping global importance fresh after one tuple changed.
package main

import (
	"fmt"
	"log"

	"sizelos"
	"sizelos/internal/datagen"
	"sizelos/internal/relational"
)

func main() {
	cfg := datagen.DefaultDBLPConfig()
	cfg.Authors = 300
	cfg.Papers = 1200
	db, err := datagen.GenerateDBLP(cfg)
	if err != nil {
		log.Fatal(err)
	}
	// The practical serving settings (d=0.85). The high-damping d3 stress
	// setting would trip the residual push budget and fall back — try
	// adding it to watch FallbackTaken flip.
	settings := []sizelos.Setting{
		{Name: "GA1-d1", GA: datagen.DBLPGA1(), Damping: 0.85},
		{Name: "GA2-d1", GA: datagen.DBLPGA2(), Damping: 0.85},
	}
	eng, err := sizelos.NewEngine(db, settings)
	if err != nil {
		log.Fatal(err)
	}
	if err := eng.RegisterGDS(datagen.AuthorGDS().Threshold(sizelos.Theta)); err != nil {
		log.Fatal(err)
	}
	nodes := eng.Graph().NumNodes()
	fmt.Printf("engine up: %d nodes, settings %v\n\n", nodes, eng.SettingNames())

	paper := db.Relation("Paper")
	pk := int64(50_000_000)
	prev := int64(0)
	totalResidual, totalFullEquiv := 0, 0
	for i := 0; i < 10; i++ {
		pk++
		a := relational.TupleID(i % paper.Len())
		c := relational.TupleID((i*7 + 13) % paper.Len())
		batch := sizelos.MutationBatch{
			Rerank: true,
			Inserts: []sizelos.TupleInsert{{
				Rel: "Cites",
				Tuple: relational.Tuple{
					relational.IntVal(pk),
					relational.IntVal(paper.PK(a)),
					relational.IntVal(paper.PK(c)),
				},
			}},
		}
		if prev != 0 {
			batch.Deletes = []sizelos.TupleDelete{{Rel: "Cites", PK: prev}}
		}
		prev = pk

		res, err := eng.Mutate(batch)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("batch %2d:\n", i+1)
		for _, name := range eng.SettingNames() {
			st := res.RerankStats[name]
			mode := "warm-full"
			if st.Residual {
				mode = "residual"
			}
			if st.FallbackTaken {
				mode = "residual->fallback"
			}
			// What a warm full iteration would have paid for the same
			// refresh: the cold iteration count times the arena, floored by
			// what actually ran.
			fullEquiv := st.Updates
			if st.Residual && !st.FallbackTaken {
				fullEquiv = (st.IterationsSaved + st.Iterations) * nodes
			}
			totalResidual += st.Updates
			totalFullEquiv += fullEquiv
			fmt.Printf("  %-7s %-18s pushes=%-5d nodes-touched=%-5d updates=%-6d (cold-equivalent %d)\n",
				name, mode, st.Pushes, st.NodesTouched, st.Updates, fullEquiv)
		}
	}
	if totalResidual > 0 {
		fmt.Printf("\nstream total: %d node-score updates vs %d cold-equivalent (%.1fx saved)\n",
			totalResidual, totalFullEquiv, float64(totalFullEquiv)/float64(totalResidual))
	}

	// The refreshed scores serve immediately.
	results, _, _, err := eng.QueryPage(sizelos.QueryRequest{Rel: "Author", Query: "Faloutsos", L: 8})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\npost-stream search: %d summaries, first:\n%s\n", len(results), results[0].Text)
}
