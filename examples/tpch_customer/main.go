// TPC-H customer intelligence: size-l OSs over a trading database with
// ValueRank importance (the paper's second evaluation database). For a few
// customers, print size-10 summaries under both GA1 (ValueRank: authority
// follows money) and GA2 (plain ObjectRank: structure only) and show how
// the value-aware ranking changes which orders make the summary.
package main

import (
	"fmt"
	"log"

	"sizelos"
	"sizelos/internal/datagen"
)

func main() {
	cfg := datagen.DefaultTPCHConfig()
	cfg.ScaleFactor = 0.002
	eng, err := sizelos.OpenTPCH(cfg)
	if err != nil {
		log.Fatalf("open tpch: %v", err)
	}

	for _, name := range []string{"Customer#000001", "Customer#000002"} {
		for _, setting := range []string{"GA1-d1", "GA2-d1"} {
			res, _, _, err := eng.QueryPage(sizelos.QueryRequest{
				Rel:         "Customer",
				Query:       name,
				L:           10,
				Setting:     setting,
				ShowWeights: true,
			})
			if err != nil {
				log.Fatalf("search: %v", err)
			}
			if len(res) == 0 {
				log.Fatalf("customer %s not found", name)
			}
			kind := "ValueRank (authority follows order value)"
			if setting == "GA2-d1" {
				kind = "ObjectRank (values neglected)"
			}
			fmt.Printf("=== %s under %s — %s ===\n", name, setting, kind)
			fmt.Println(res[0].Text)
		}
	}
}
