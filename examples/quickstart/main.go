// Quickstart: open the synthetic DBLP database, run the paper's running
// example Q1 ("Faloutsos") with l=15, and print the resulting size-l
// Object Summaries — the equivalent of the paper's Example 5.
package main

import (
	"fmt"
	"log"

	"sizelos"
	"sizelos/internal/datagen"
)

func main() {
	// A small, fast configuration; see examples/dpa_report for the default
	// evaluation scale.
	cfg := datagen.DefaultDBLPConfig()
	cfg.Authors = 300
	cfg.Papers = 1500

	eng, err := sizelos.OpenDBLP(cfg)
	if err != nil {
		log.Fatalf("open dblp: %v", err)
	}

	res, err := eng.Query(sizelos.QueryRequest{Rel: "Author", Query: "Faloutsos", L: 15})
	if err != nil {
		log.Fatalf("search: %v", err)
	}
	defer res.Close()
	fmt.Printf("Q1 = \"Faloutsos\", l = 15: %d data subjects\n\n", res.Stats().Matches)
	for {
		r, ok := res.Next()
		if !ok {
			break
		}
		fmt.Printf("=== %s (Im(S) = %.2f) ===\n", r.Headline, r.Result.Importance)
		fmt.Println(r.Text)
	}
	if err := res.Err(); err != nil {
		log.Fatalf("search: %v", err)
	}
}
