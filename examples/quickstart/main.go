// Quickstart: open the synthetic DBLP database, run the paper's running
// example Q1 ("Faloutsos") with l=15, and print the resulting size-l
// Object Summaries — the equivalent of the paper's Example 5.
package main

import (
	"fmt"
	"log"

	"sizelos"
	"sizelos/internal/datagen"
)

func main() {
	// A small, fast configuration; see examples/dpa_report for the default
	// evaluation scale.
	cfg := datagen.DefaultDBLPConfig()
	cfg.Authors = 300
	cfg.Papers = 1500

	eng, err := sizelos.OpenDBLP(cfg)
	if err != nil {
		log.Fatalf("open dblp: %v", err)
	}

	results, err := eng.Search("Author", "Faloutsos", 15, sizelos.SearchOptions{})
	if err != nil {
		log.Fatalf("search: %v", err)
	}
	fmt.Printf("Q1 = \"Faloutsos\", l = 15: %d data subjects\n\n", len(results))
	for _, r := range results {
		fmt.Printf("=== %s (Im(S) = %.2f) ===\n", r.Headline, r.Result.Importance)
		fmt.Println(r.Text)
	}
}
