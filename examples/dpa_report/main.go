// DPA subject-access report: the paper motivates Object Summaries with
// data-protection-act access requests ("data controllers must extract data
// for a given DS from their databases and present it in an intelligible
// form", §1). This example plays a data controller for the bibliographic
// database: given a person's exact name, it produces both the synoptic
// size-l report (first page) and the complete OS (full disclosure),
// comparing their sizes.
package main

import (
	"fmt"
	"log"
	"strings"

	"sizelos"
	"sizelos/internal/datagen"
)

func main() {
	cfg := datagen.DefaultDBLPConfig()
	cfg.Authors = 300
	cfg.Papers = 1500
	eng, err := sizelos.OpenDBLP(cfg)
	if err != nil {
		log.Fatalf("open dblp: %v", err)
	}

	const subject = "Christos Faloutsos"

	// Page 1: the synopsis — a size-20 OS, computed from a prelim-l OS with
	// the Top-Path heuristic (the paper's recommended configuration).
	synopsis, _, _, err := eng.QueryPage(sizelos.QueryRequest{
		Rel: "Author", Query: subject, L: 20, ShowWeights: true,
	})
	if err != nil {
		log.Fatalf("search: %v", err)
	}
	if len(synopsis) != 1 {
		log.Fatalf("expected exactly one subject, got %d", len(synopsis))
	}

	// Full disclosure: the complete OS (l large enough to keep everything).
	full, _, _, err := eng.QueryPage(sizelos.QueryRequest{
		Rel: "Author", Query: subject, L: 1 << 20, Complete: true,
	})
	if err != nil {
		log.Fatalf("full report: %v", err)
	}

	fmt.Printf("SUBJECT ACCESS REPORT — %s\n", subject)
	fmt.Println(strings.Repeat("=", 50))
	fmt.Printf("Records held: %d tuples across the database\n", len(full[0].Result.Nodes))
	fmt.Printf("Synopsis (%d most important records, Im(S)=%.2f):\n\n",
		len(synopsis[0].Result.Nodes), synopsis[0].Result.Importance)
	fmt.Println(synopsis[0].Text)
	fmt.Printf("... full report available on request (%d further tuples omitted)\n",
		len(full[0].Result.Nodes)-len(synopsis[0].Result.Nodes))
}
