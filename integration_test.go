package sizelos

import (
	"path/filepath"
	"testing"

	"sizelos/internal/datagen"
	"sizelos/internal/rank"
	"sizelos/internal/relational"
)

// The full persistence cycle: generate -> save -> reload -> rebuild engine
// -> identical search results. This is the workflow cmd/datagen +
// cmd/oskws support.
func TestPersistenceRoundTripSearch(t *testing.T) {
	cfg := datagen.DefaultDBLPConfig()
	cfg.Authors = 60
	cfg.Papers = 250
	cfg.Conferences = 5
	cfg.YearSpan = 4
	db, err := datagen.GenerateDBLP(cfg)
	if err != nil {
		t.Fatalf("GenerateDBLP: %v", err)
	}
	path := filepath.Join(t.TempDir(), "dblp.gob")
	if err := db.SaveFile(path); err != nil {
		t.Fatalf("SaveFile: %v", err)
	}

	settings := DefaultSettings(datagen.DBLPGA1(), datagen.DBLPGA2())
	build := func(d *relational.DB) *Engine {
		t.Helper()
		eng, err := NewEngine(d, settings)
		if err != nil {
			t.Fatalf("NewEngine: %v", err)
		}
		if err := eng.RegisterGDS(datagen.AuthorGDS()); err != nil {
			t.Fatalf("RegisterGDS: %v", err)
		}
		return eng
	}
	engA := build(db)

	reloaded, err := relational.LoadFile(path)
	if err != nil {
		t.Fatalf("LoadFile: %v", err)
	}
	engB := build(reloaded)

	a, err := engA.Search("Author", "Christos Faloutsos", 10, SearchOptions{})
	if err != nil {
		t.Fatalf("Search(a): %v", err)
	}
	b, err := engB.Search("Author", "Christos Faloutsos", 10, SearchOptions{})
	if err != nil {
		t.Fatalf("Search(b): %v", err)
	}
	if len(a) != 1 || len(b) != 1 {
		t.Fatalf("result counts: %d vs %d", len(a), len(b))
	}
	if a[0].Text != b[0].Text {
		t.Errorf("reloaded engine renders differently:\n--- a ---\n%s--- b ---\n%s", a[0].Text, b[0].Text)
	}
	da := a[0].Result.Importance - b[0].Result.Importance
	if da > 1e-9 || da < -1e-9 {
		t.Errorf("importance differs after reload: %v vs %v", a[0].Result.Importance, b[0].Result.Importance)
	}
}

// Precomputed scores survive their own persistence cycle and keep ranking
// order (the rank.Store workflow).
func TestScoreStoreRoundTripRanking(t *testing.T) {
	eng := getDBLP(t)
	sc, err := eng.Scores(DefaultSetting)
	if err != nil {
		t.Fatal(err)
	}
	store := rank.NewStore()
	store.Put(DefaultSetting, sc)
	path := filepath.Join(t.TempDir(), "scores.gob")
	if err := store.SaveFile(path); err != nil {
		t.Fatalf("SaveFile: %v", err)
	}
	loaded, err := rank.LoadStoreFile(path)
	if err != nil {
		t.Fatalf("LoadStoreFile: %v", err)
	}
	got, err := loaded.Get(DefaultSetting)
	if err != nil {
		t.Fatalf("Get: %v", err)
	}
	for rel, s := range sc {
		g := got[rel]
		if len(g) != len(s) {
			t.Fatalf("relation %s: %d scores, want %d", rel, len(g), len(s))
		}
		for i := range s {
			if d := s[i] - g[i]; d > 1e-12 || d < -1e-12 {
				t.Fatalf("relation %s tuple %d: %v != %v", rel, i, s[i], g[i])
			}
		}
	}
}
