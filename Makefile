GO ?= go

.PHONY: all build vet test race bench bench-json gate serve clean

all: vet build test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Quick textual benchmark pass over the perf-critical families.
bench:
	$(GO) test -run '^$$' -bench 'RankCompute|RankCompile|NewEngine|EndToEndSearch' -benchmem .

# Archive the Fig-10 + rank + search benchmarks as the next BENCH_<n>.json.
bench-json:
	$(GO) run ./cmd/benchjson

# Compare the gated ns/op families against the latest committed baseline
# recorded on matching hardware; fails on >25% regression.
gate:
	$(GO) run ./cmd/benchgate

# Run the multi-tenant search service on :8080 with the demo tenants.
serve:
	$(GO) run ./cmd/ossrv

clean:
	$(GO) clean ./...
