GO ?= go

.PHONY: all build vet test race bench bench-json clean

all: vet build test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Quick textual benchmark pass over the perf-critical families.
bench:
	$(GO) test -run '^$$' -bench 'RankCompute|RankCompile|NewEngine|EndToEndSearch' -benchmem .

# Archive the Fig-10 + rank + search benchmarks as the next BENCH_<n>.json.
bench-json:
	$(GO) run ./cmd/benchjson

clean:
	$(GO) clean ./...
