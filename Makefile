GO ?= go

.PHONY: all build vet test race bench bench-json gate serve soak scaleout clean

all: vet build test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Quick textual benchmark pass over the perf-critical families.
bench:
	$(GO) test -run '^$$' -bench 'RankCompute|RankCompile|NewEngine|EndToEndSearch' -benchmem .

# Archive the Fig-10 + rank + search benchmarks as the next BENCH_<n>.json.
bench-json:
	$(GO) run ./cmd/benchjson

# Compare the gated ns/op families against the latest committed baseline
# recorded on matching hardware; fails on >25% regression.
gate:
	$(GO) run ./cmd/benchgate

# Run the multi-tenant search service on :8080 with the demo tenants.
serve:
	$(GO) run ./cmd/ossrv

# 30s closed-loop QoS soak: sustained mixed load, asserts no p99
# collapse and flat goroutine/heap footprints (docs/QOS.md).
soak:
	SIZELOS_SOAK=1 $(GO) test -run TestQoSSoak -count=1 -v -timeout 5m ./internal/tenancy

# Fleet node-kill integration leg: three ossrv nodes over one shared
# data dir behind osrouter, SIGKILL an owner while osload streams
# through the front door, require zero lost acked mutations
# (docs/SCALEOUT.md).
scaleout:
	SIZELOS_INTEGRATION=1 $(GO) test -run TestScaleOutFleetSurvivesNodeKill -count=1 -v -timeout 10m .

clean:
	$(GO) clean ./...
